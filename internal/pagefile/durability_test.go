package pagefile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// flipByte XORs one byte of a file in place.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func TestDiskFileChecksumDetectsCorruption(t *testing.T) {
	d, path := newDisk(t, 64)
	id, err := d.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write(id, []byte("precious payload")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte of the page: reopen succeeds (the header is
	// intact) but reading the page must surface ErrCorrupt, and Scrub
	// must name the page.
	flipByte(t, path, int64(id)*(64+pageTrailerSize)+5)
	re, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	buf := make([]byte, 64)
	if err := re.Read(id, buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read of corrupt page: %v", err)
	}
	bad, err := re.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0] != id {
		t.Fatalf("scrub reported %v, want [%d]", bad, id)
	}
}

func TestDiskFileScrubCleanAndSkipsFreed(t *testing.T) {
	d, _ := newDisk(t, 64)
	defer d.Close()
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, err := d.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Write(id, []byte{byte(i), 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Freeing rewrites the page's first bytes without re-checksumming;
	// Scrub must skip freed pages rather than flagging them.
	if err := d.Free(ids[2]); err != nil {
		t.Fatal(err)
	}
	bad, err := d.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("scrub of healthy file reported %v", bad)
	}
}

func TestDiskFileHeaderChecksum(t *testing.T) {
	d, path := newDisk(t, 64)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	flipByte(t, path, 13) // inside the next/freeHead fields
	if _, err := OpenDiskFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with corrupt header: %v", err)
	}
}

// craftHeader builds a header with a valid checksum so individual
// field validations (not the checksum) are exercised.
func craftHeader(pageSize, next, freeHead uint32) []byte {
	hdr := make([]byte, diskHeaderSize)
	copy(hdr, diskMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], pageSize)
	binary.LittleEndian.PutUint32(hdr[12:16], next)
	binary.LittleEndian.PutUint32(hdr[16:20], freeHead)
	binary.LittleEndian.PutUint32(hdr[diskHeaderSize-4:], crc32.Checksum(hdr[:diskHeaderSize-4], castagnoli))
	return hdr
}

func TestDiskFileReopenEdgeCases(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	cases := []struct {
		name    string
		path    string
		wantSub string
	}{
		{"wrong magic", write("magic.db", append([]byte("NOTATREE"), make([]byte, diskHeaderSize)...)), "bad magic"},
		{"truncated header", write("short.db", []byte(diskMagic+"xx")), "truncated header"},
		{"page size below range", write("tiny.db", craftHeader(12, 1, 0)), "out of range"},
		{"page size above range", write("huge.db", craftHeader(1<<30, 1, 0)), "out of range"},
		{"zero next id", write("zeronext.db", craftHeader(64, 0, 0)), "next page id is zero"},
		{"free head out of range", write("freerange.db", craftHeader(64, 1, 7)), "beyond allocation bound"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := OpenDiskFile(tc.path)
			if err == nil {
				t.Fatal("open succeeded on a damaged file")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestDiskFileFreeListCycleDetected(t *testing.T) {
	d, path := newDisk(t, 64)
	a, err := d.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// The list is b → a → nil. Point a back at b to close the loop.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var ptr [4]byte
	binary.LittleEndian.PutUint32(ptr[:], uint32(b))
	if _, err := f.WriteAt(ptr[:], int64(a)*(64+pageTrailerSize)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = OpenDiskFile(path)
	if err == nil {
		t.Fatal("open succeeded on a cyclic free list")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("error %q does not mention the cycle", err)
	}
}

func TestDiskFileTruncatedPageArea(t *testing.T) {
	d, path := newDisk(t, 64)
	for i := 0; i < 3; i++ {
		if _, err := d.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, 100); err != nil {
		t.Fatal(err)
	}
	_, err := OpenDiskFile(path)
	if err == nil {
		t.Fatal("open succeeded on a truncated page area")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("error %q does not mention truncation", err)
	}
}

func TestCrashFileStopsMutationsAtCrashPoint(t *testing.T) {
	base := NewMemFile(64)
	cf := NewCrashFile(base)
	// Unarmed: everything passes.
	id, err := cf.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	cf.CrashAfter(2, CrashClean)
	if err := cf.Write(id, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := cf.Write(id, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if cf.Ops() != 2 || cf.Crashed() {
		t.Fatalf("ops=%d crashed=%v before the crash point", cf.Ops(), cf.Crashed())
	}
	if err := cf.Write(id, []byte("three")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write at crash point: %v", err)
	}
	if !cf.Crashed() {
		t.Fatal("crash point reached but Crashed() is false")
	}
	// The clean-mode crash dropped the write entirely.
	buf := make([]byte, 64)
	if err := cf.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf, []byte("two")) {
		t.Fatalf("crashed write was applied: %q", buf[:8])
	}
	// Everything mutating after the crash fails too.
	if _, err := cf.Alloc(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("alloc after crash: %v", err)
	}
	if err := cf.Free(id); !errors.Is(err, ErrCrashed) {
		t.Fatalf("free after crash: %v", err)
	}
}

func TestCrashFileTornAndCorruptWrites(t *testing.T) {
	data := bytes.Repeat([]byte{0xEE}, 64)

	base := NewMemFile(64)
	cf := NewCrashFile(base)
	id, _ := cf.Alloc()
	cf.CrashAfter(0, CrashTorn)
	if err := cf.Write(id, data); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write: %v", err)
	}
	buf := make([]byte, 64)
	if err := base.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:32], data[:32]) || !bytes.Equal(buf[32:], make([]byte, 32)) {
		t.Fatalf("torn write did not apply exactly the first half: % x", buf)
	}

	base = NewMemFile(64)
	cf = NewCrashFile(base)
	id, _ = cf.Alloc()
	cf.CrashAfter(0, CrashCorrupt)
	if err := cf.Write(id, data); !errors.Is(err, ErrCrashed) {
		t.Fatalf("corrupt write: %v", err)
	}
	if err := base.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, data) {
		t.Fatal("corrupt write applied the data unmodified")
	}
}
