// Package pagefile simulates the disk under the spatial access
// methods: fixed-size pages with explicit allocation, read, write and
// free, plus access accounting. The paper's performance metric is the
// number of disk accesses per search; every R-tree node in this
// repository lives on exactly one page of a pagefile, so counted page
// reads are the faithful analogue of the paper's measurements
// (hardware-independent, as a 1995 testbed is not reproducible).
package pagefile

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// PageID identifies a page. Zero is never a valid page.
type PageID uint32

// NilPage is the zero PageID, used as a null reference.
const NilPage PageID = 0

// Common errors.
var (
	ErrPageNotFound = errors.New("pagefile: page not found")
	ErrPageFreed    = errors.New("pagefile: page was freed")
	ErrBadSize      = errors.New("pagefile: data does not fit page size")
	// ErrCorrupt is returned when a page (or file header) fails its
	// checksum: the stored bytes are not what was written, and serving
	// them as a node would silently return wrong query answers.
	ErrCorrupt = errors.New("pagefile: corrupt page")
)

// Stats counts physical page operations.
type Stats struct {
	Reads  uint64
	Writes uint64
	Allocs uint64
	Frees  uint64
}

// Sub returns the difference s − t, for measuring an operation window.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Reads:  s.Reads - t.Reads,
		Writes: s.Writes - t.Writes,
		Allocs: s.Allocs - t.Allocs,
		Frees:  s.Frees - t.Frees,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d allocs=%d frees=%d", s.Reads, s.Writes, s.Allocs, s.Frees)
}

// counters is the lock-free accounting shared by the File
// implementations: reads happen under shared locks, so the counters
// must be atomic for the totals to stay exact under concurrency.
type counters struct {
	reads, writes, allocs, frees atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Reads:  c.reads.Load(),
		Writes: c.writes.Load(),
		Allocs: c.allocs.Load(),
		Frees:  c.frees.Load(),
	}
}

func (c *counters) reset() {
	c.reads.Store(0)
	c.writes.Store(0)
	c.allocs.Store(0)
	c.frees.Store(0)
}

// File is a page-addressed storage device.
type File interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// Alloc reserves a fresh zeroed page and returns its id.
	Alloc() (PageID, error)
	// Read copies the page contents into buf (len ≥ PageSize).
	Read(id PageID, buf []byte) error
	// Write replaces the page contents (len(data) ≤ PageSize).
	Write(id PageID, data []byte) error
	// Free releases the page for reuse.
	Free(id PageID) error
	// Stats returns a snapshot of the physical access counters.
	Stats() Stats
	// ResetStats zeroes the access counters.
	ResetStats()
	// NumPages returns the number of live pages.
	NumPages() int
}

// MemFile is an in-memory File. It is safe for concurrent use; reads
// take a shared lock and scale across goroutines (the access methods
// run searches concurrently), while Alloc/Write/Free are exclusive.
type MemFile struct {
	mu       sync.RWMutex
	pageSize int
	pages    map[PageID][]byte
	free     []PageID
	next     PageID
	stats    counters
}

// NewMemFile creates an in-memory page file with the given page size.
func NewMemFile(pageSize int) *MemFile {
	if pageSize <= 0 {
		panic("pagefile: page size must be positive")
	}
	return &MemFile{
		pageSize: pageSize,
		pages:    make(map[PageID][]byte),
		next:     1,
	}
}

// PageSize returns the page size in bytes.
func (f *MemFile) PageSize() int { return f.pageSize }

// Alloc reserves a fresh zeroed page.
func (f *MemFile) Alloc() (PageID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var id PageID
	if n := len(f.free); n > 0 {
		id = f.free[n-1]
		f.free = f.free[:n-1]
	} else {
		id = f.next
		f.next++
	}
	f.pages[id] = make([]byte, f.pageSize)
	f.stats.allocs.Add(1)
	return id, nil
}

// Read copies the page into buf. Reads share the lock, so concurrent
// traversals do not serialise on the simulated disk.
func (f *MemFile) Read(id PageID, buf []byte) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	p, ok := f.pages[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	if len(buf) < f.pageSize {
		return ErrBadSize
	}
	copy(buf, p)
	f.stats.reads.Add(1)
	return nil
}

// Write replaces the page contents.
func (f *MemFile) Write(id PageID, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, ok := f.pages[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	if len(data) > f.pageSize {
		return ErrBadSize
	}
	copy(p, data)
	for i := len(data); i < f.pageSize; i++ {
		p[i] = 0
	}
	f.stats.writes.Add(1)
	return nil
}

// Free releases the page.
func (f *MemFile) Free(id PageID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.pages[id]; !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	delete(f.pages, id)
	f.free = append(f.free, id)
	f.stats.frees.Add(1)
	return nil
}

// Stats returns a snapshot of the counters.
func (f *MemFile) Stats() Stats { return f.stats.snapshot() }

// ResetStats zeroes the counters.
func (f *MemFile) ResetStats() { f.stats.reset() }

// NumPages returns the number of live pages.
func (f *MemFile) NumPages() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.pages)
}
