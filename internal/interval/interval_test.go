package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gridIntervals enumerates all non-degenerate intervals with integer
// endpoints in [0, n).
func gridIntervals(n int) []Interval {
	var out []Interval
	for lo := 0; lo < n; lo++ {
		for hi := lo + 1; hi < n; hi++ {
			out = append(out, Interval{float64(lo), float64(hi)})
		}
	}
	return out
}

// TestRelateCompleteAndDisjoint verifies, exhaustively over an integer
// grid realising every endpoint ordering, that Relate always yields
// exactly one of the thirteen relations and that all thirteen occur
// (the paper's claim that the 1D relations are pairwise disjoint and
// provide a complete coverage).
func TestRelateCompleteAndDisjoint(t *testing.T) {
	ivs := gridIntervals(8)
	seen := make(map[Relation]int)
	for _, p := range ivs {
		for _, q := range ivs {
			r := Relate(p, q)
			if !r.Valid() {
				t.Fatalf("Relate(%v,%v) = invalid %d", p, q, r)
			}
			seen[r]++
		}
	}
	if len(seen) != NumRelations {
		t.Fatalf("realised %d relations on the grid, want %d: %v", len(seen), NumRelations, seen)
	}
}

// TestRelateMatchesDefinition cross-checks the classifier against the
// defining inequalities of each relation.
func TestRelateMatchesDefinition(t *testing.T) {
	def := func(p, q Interval) Relation {
		switch {
		case p.Hi < q.Lo:
			return Before
		case p.Hi == q.Lo:
			return Meets
		case p.Lo < q.Lo && q.Lo < p.Hi && p.Hi < q.Hi:
			return Overlaps
		case p.Lo < q.Lo && p.Hi == q.Hi:
			return FinishedBy
		case p.Lo < q.Lo && p.Hi > q.Hi:
			return Contains
		case p.Lo == q.Lo && p.Hi < q.Hi:
			return Starts
		case p.Lo == q.Lo && p.Hi == q.Hi:
			return Equal
		case p.Lo == q.Lo && p.Hi > q.Hi:
			return StartedBy
		case q.Lo < p.Lo && p.Hi < q.Hi:
			return During
		case q.Lo < p.Lo && p.Lo < q.Hi && p.Hi == q.Hi:
			return Finishes
		case q.Lo < p.Lo && p.Lo < q.Hi && p.Hi > q.Hi:
			return OverlappedBy
		case p.Lo == q.Hi:
			return MetBy
		default:
			return After
		}
	}
	for _, p := range gridIntervals(8) {
		for _, q := range gridIntervals(8) {
			if got, want := Relate(p, q), def(p, q); got != want {
				t.Fatalf("Relate(%v,%v) = %v, want %v", p, q, got, want)
			}
		}
	}
}

func TestConverseExhaustive(t *testing.T) {
	for _, p := range gridIntervals(8) {
		for _, q := range gridIntervals(8) {
			if got, want := Relate(p, q).Converse(), Relate(q, p); got != want {
				t.Fatalf("converse mismatch for p=%v q=%v: %v vs %v", p, q, got, want)
			}
		}
	}
}

func TestConverseInvolution(t *testing.T) {
	for _, r := range All() {
		if r.Converse().Converse() != r {
			t.Errorf("%v: converse not an involution", r)
		}
	}
}

func TestRelatePanicsOnDegenerate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Relate on a degenerate interval did not panic")
		}
	}()
	Relate(Interval{1, 1}, Interval{0, 2})
}

// TestPredicates checks the derived boolean views of a relation against
// a direct point-set interpretation on representatives.
func TestPredicates(t *testing.T) {
	q := Interval{refLo, refHi}
	for _, r := range All() {
		p := representative(r)
		sharesPts := p.Hi >= q.Lo && q.Hi >= p.Lo
		if got := r.SharesPoints(); got != sharesPts {
			t.Errorf("%v: SharesPoints = %v, want %v", r, got, sharesPts)
		}
		sharesInt := p.Hi > q.Lo && q.Hi > p.Lo
		if got := r.SharesInterior(); got != sharesInt {
			t.Errorf("%v: SharesInterior = %v, want %v", r, got, sharesInt)
		}
		covers := p.Lo <= q.Lo && p.Hi >= q.Hi
		if got := r.CoversRef(); got != covers {
			t.Errorf("%v: CoversRef = %v, want %v", r, got, covers)
		}
		covered := q.Lo <= p.Lo && q.Hi >= p.Hi
		if got := r.CoveredByRef(); got != covered {
			t.Errorf("%v: CoveredByRef = %v, want %v", r, got, covered)
		}
	}
}

func TestSetOperations(t *testing.T) {
	s := NewSet(Before, Equal, After)
	if s.Len() != 3 || !s.Has(Equal) || s.Has(Meets) {
		t.Fatalf("basic set ops broken: %v", s)
	}
	u := s.Union(NewSet(Meets))
	if u.Len() != 4 || !u.Has(Meets) {
		t.Fatalf("union broken: %v", u)
	}
	if got := s.Minus(NewSet(Equal)); got.Len() != 2 || got.Has(Equal) {
		t.Fatalf("minus broken: %v", got)
	}
	if got := s.Intersect(NewSet(Equal, Meets)); got != NewSet(Equal) {
		t.Fatalf("intersect broken: %v", got)
	}
	if FullSet().Len() != NumRelations {
		t.Fatalf("full set has %d members", FullSet().Len())
	}
	if got := NewSet(Before, Meets).Converse(); got != NewSet(After, MetBy) {
		t.Fatalf("set converse broken: %v", got)
	}
	if got := NewSet(Overlaps).String(); got != "{overlaps}" {
		t.Fatalf("set String = %q", got)
	}
}

// TestCoverersKnownRows checks the derived per-axis propagation sets
// against rows that follow directly from the definitions.
func TestCoverersKnownRows(t *testing.T) {
	cases := []struct {
		r    Relation
		want Set
	}{
		// P ⊇ p with p entirely before q: P.Lo stays before q, P.Hi is free.
		{Before, NewSet(Before, Meets, Overlaps, FinishedBy, Contains)},
		// P ⊇ p = q: P covers q.
		{Equal, NewSet(FinishedBy, Contains, Equal, StartedBy)},
		// P ⊇ p ⊂ int(q): P shares interior with q, anything else free.
		{During, NewSet(Overlaps, FinishedBy, Contains, Starts, Equal, StartedBy, During, Finishes, OverlappedBy)},
		// Mirror of Before.
		{After, NewSet(After, MetBy, OverlappedBy, StartedBy, Contains)},
		// p contains q, so P contains q.
		{Contains, NewSet(Contains)},
	}
	for _, c := range cases {
		if got := Coverers(c.r); got != c.want {
			t.Errorf("Coverers(%v) = %v, want %v", c.r, got, c.want)
		}
	}
}

// TestCoverersSound verifies by random sampling that every enclosing
// interval's relation is in the derived coverer set, and that every
// member of the set is witnessed.
func TestCoverersSound(t *testing.T) {
	q := Interval{refLo, refHi}
	witnessed := make(map[Relation]Set)
	// A half-unit grid includes the exact thresholds refLo and refHi, so
	// equality relations (measure zero under float sampling) are hit.
	var grid []float64
	for v := -1.0; v <= 33; v += 0.5 {
		grid = append(grid, v)
	}
	for _, lo := range grid {
		for _, hi := range grid {
			if hi <= lo {
				continue
			}
			p := Interval{lo, hi}
			r := Relate(p, q)
			for _, a := range grid {
				if a > lo {
					continue
				}
				for _, b := range grid {
					if b < hi {
						continue
					}
					pr := Relate(Interval{a, b}, q)
					if !Coverers(r).Has(pr) {
						t.Fatalf("P=[%v,%v] ⊇ p=%v: relation %v not in Coverers(%v)=%v",
							a, b, p, pr, r, Coverers(r))
					}
					witnessed[r] = witnessed[r].Add(pr)
				}
			}
		}
	}
	for _, r := range All() {
		if missing := Coverers(r).Minus(witnessed[r]); !missing.IsEmpty() {
			t.Errorf("Coverers(%v): members %v never witnessed by sampling", r, missing)
		}
	}
}

// TestCoverersMonotone: the coverer set of any relation must contain
// the relation's own "identity coverage" (P = p).
func TestCoverersReflexive(t *testing.T) {
	for _, r := range All() {
		if !Coverers(r).Has(r) {
			t.Errorf("Coverers(%v) does not contain %v itself", r, r)
		}
	}
}

// TestDeriveRepresentativeIndependence re-derives coverer sets from
// random representatives and checks they match the canonical table.
func TestDeriveRepresentativeIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := Interval{refLo, refHi}
	for _, r := range All() {
		canon := representative(r)
		for trial := 0; trial < 50; trial++ {
			// Perturb the representative without changing its relation.
			p := canon
			dl := (rng.Float64() - 0.5) * 1.5
			dh := (rng.Float64() - 0.5) * 1.5
			cand := Interval{p.Lo + dl, p.Hi + dh}
			if !cand.Valid() || Relate(cand, q) != r {
				continue
			}
			// Enumerate enclosing endpoints over a grid that includes the
			// exact thresholds, so equality relations are realised.
			as := []float64{cand.Lo, refLo, refHi, refLo - 2, refLo + 2, refHi - 2, -2}
			bs := []float64{cand.Hi, refLo, refHi, refLo + 2, refHi - 2, refHi + 2, 33}
			var s Set
			for _, a := range as {
				if a > cand.Lo {
					continue
				}
				for _, b := range bs {
					if b < cand.Hi {
						continue
					}
					s = s.Add(Relate(Interval{a, b}, q))
				}
			}
			if s != coverersTable[r] {
				t.Fatalf("relation %v: coverers from representative %v = %v, canonical %v",
					r, cand, s, coverersTable[r])
			}
		}
	}
}

// TestNeighbourhoodGraphPaperExamples checks the derived graphs against
// every concrete example the paper states in Section 6.
func TestNeighbourhoodGraphPaperExamples(t *testing.T) {
	// "if the relation between the objects is R1, then extending the
	// primary object ... gradually leads to relations R2, R3, R4 and R5".
	chain := []Relation{Before, Meets, Overlaps, FinishedBy, Contains}
	for i := 0; i+1 < len(chain); i++ {
		if got := GrowPrimaryNeighbours(chain[i]); !got.Has(chain[i+1]) {
			t.Errorf("grow-primary from %v should reach %v, got %v", chain[i], chain[i+1], got)
		}
	}
	// "relation 7 has four first-degree conceptual neighbours (relations
	// 4 and 8 if we enlarge the primary object, and relations 6 and 10 if
	// we enlarge the reference object)".
	if got := GrowPrimaryNeighbours(Equal); got != NewSet(FinishedBy, StartedBy) {
		t.Errorf("grow-primary(equal) = %v, want {finishedBy startedBy}", got)
	}
	if got := GrowReferenceNeighbours(Equal); got != NewSet(Starts, Finishes) {
		t.Errorf("grow-reference(equal) = %v, want {starts finishes}", got)
	}
	if got := FirstDegreeNeighbours(Equal); got != NewSet(FinishedBy, Starts, StartedBy, Finishes) {
		t.Errorf("N1(equal) = %v, want {4 6 8 10}", got)
	}
	// "the second-degree conceptual neighbours of relation 7 comprise
	// relations 3, 5, 9 and 11".
	if got := SecondDegreeNeighbours(Equal); got != NewSet(Overlaps, Contains, During, OverlappedBy) {
		t.Errorf("N2(equal) = %v, want {3 5 9 11}", got)
	}
	// "relation 2 has one first-degree conceptual neighbour, relation 3,
	// which is obtained by enlarging either object".
	if got := FirstDegreeNeighbours(Meets); got != NewSet(Overlaps) {
		t.Errorf("N1(meets) = %v, want {overlaps}", got)
	}
	if !GrowPrimaryNeighbours(Meets).Has(Overlaps) || !GrowReferenceNeighbours(Meets).Has(Overlaps) {
		t.Error("meets should reach overlaps by enlarging either object")
	}
	// "relation 2 does not have any second-degree neighbours".
	if got := SecondDegreeNeighbours(Meets); !got.IsEmpty() {
		t.Errorf("N2(meets) = %v, want empty", got)
	}
}

// TestNeighbourhoodEnlargementSound: growing either interval slightly
// must land in {r} ∪ N1(r).
func TestNeighbourhoodEnlargementSound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := Interval{refLo, refHi}
	for i := 0; i < 100000; i++ {
		lo := rng.Float64()*34 - 1
		hi := lo + 0.05 + rng.Float64()*34
		p := Interval{lo, hi}
		r := Relate(p, q)
		allowed := NewSet(r).Union(FirstDegreeNeighbours(r))
		// A single tiny enlargement of one endpoint.
		const eps = 1e-9
		for _, p2 := range []Interval{{lo - eps, hi}, {lo, hi + eps}} {
			if r2 := Relate(p2, q); !allowed.Has(r2) {
				t.Fatalf("p=%v → %v: tiny primary growth reached %v ∉ %v", p, r, r2, allowed)
			}
		}
		for _, q2 := range []Interval{{q.Lo - eps, q.Hi}, {q.Lo, q.Hi + eps}} {
			if r2 := Relate(p, q2); !allowed.Has(r2) {
				t.Fatalf("p=%v → %v: tiny reference growth reached %v ∉ %v", p, r, r2, allowed)
			}
		}
	}
}

func TestNeighbourhood2ContainsSelf(t *testing.T) {
	for _, r := range All() {
		n := Neighbourhood2(r)
		if !n.Has(r) {
			t.Errorf("Neighbourhood2(%v) misses %v", r, r)
		}
		if n.Intersect(FirstDegreeNeighbours(r)) != FirstDegreeNeighbours(r) {
			t.Errorf("Neighbourhood2(%v) misses first-degree members", r)
		}
	}
}

func TestQuickRelateTotal(t *testing.T) {
	f := func(a, c float64, w1, w2 uint8) bool {
		// Clamp positions to a range where adding a small width cannot
		// be absorbed by floating-point rounding.
		a = math.Mod(a, 1000)
		c = math.Mod(c, 1000)
		if math.IsNaN(a) {
			a = 0
		}
		if math.IsNaN(c) {
			c = 0
		}
		p := Interval{a, a + 0.5 + float64(w1)}
		q := Interval{c, c + 0.5 + float64(w2)}
		r := Relate(p, q)
		return r.Valid() && Relate(q, p) == r.Converse()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestStringNames(t *testing.T) {
	if Before.String() != "before" || After.String() != "after" || Equal.String() != "equal" {
		t.Fatal("relation names broken")
	}
	if Relation(0).Valid() || Relation(14).Valid() {
		t.Fatal("validity range broken")
	}
	if got := Relation(99).String(); got != "interval.Relation(99)" {
		t.Fatalf("out-of-range String = %q", got)
	}
}
