// Package interval implements the thirteen pairwise-disjoint relations
// between one-dimensional intervals (Allen 1983), which the SIGMOD'95
// paper uses as the projection machinery for Minimum Bounding Rectangles:
// an MBR is the product of its x- and y-projections, so every question
// about rectangle configurations reduces to questions about interval
// relations per axis.
//
// The relations are numbered R1..R13 in the spatial order used by the
// paper (Figure 2): R1 places the primary interval entirely before the
// reference, R13 entirely after, and the numbering advances as the
// primary interval slides rightwards relative to the reference.
//
// All intervals are assumed non-degenerate (Lo < Hi), matching the
// paper's contiguous-region assumption X(p_l) < X(p_u).
package interval

import "fmt"

// Relation identifies one of the thirteen interval relations R1..R13.
//
// The numbering follows the paper's Figure 2 (equivalently Allen's
// thirteen relations, ordered by position):
//
//	R1  Before       p.Hi <  q.Lo
//	R2  Meets        p.Hi == q.Lo
//	R3  Overlaps     p.Lo <  q.Lo < p.Hi < q.Hi
//	R4  FinishedBy   p.Lo <  q.Lo, p.Hi == q.Hi
//	R5  Contains     p.Lo <  q.Lo, p.Hi >  q.Hi
//	R6  Starts       p.Lo == q.Lo, p.Hi <  q.Hi
//	R7  Equal        p.Lo == q.Lo, p.Hi == q.Hi
//	R8  StartedBy    p.Lo == q.Lo, p.Hi >  q.Hi
//	R9  During       q.Lo <  p.Lo, p.Hi < q.Hi
//	R10 Finishes     q.Lo <  p.Lo, p.Hi == q.Hi
//	R11 OverlappedBy q.Lo <  p.Lo < q.Hi < p.Hi
//	R12 MetBy        p.Lo == q.Hi
//	R13 After        p.Lo >  q.Hi
type Relation uint8

// The thirteen interval relations.
const (
	Before Relation = 1 + iota
	Meets
	Overlaps
	FinishedBy
	Contains
	Starts
	Equal
	StartedBy
	During
	Finishes
	OverlappedBy
	MetBy
	After
)

// NumRelations is the number of distinct interval relations.
const NumRelations = 13

var names = [NumRelations + 1]string{
	"", "before", "meets", "overlaps", "finishedBy", "contains",
	"starts", "equal", "startedBy", "during", "finishes",
	"overlappedBy", "metBy", "after",
}

// String returns the conventional Allen-style name of the relation.
func (r Relation) String() string {
	if r < 1 || r > NumRelations {
		return fmt.Sprintf("interval.Relation(%d)", uint8(r))
	}
	return names[r]
}

// Valid reports whether r is one of the thirteen defined relations.
func (r Relation) Valid() bool { return r >= 1 && r <= NumRelations }

// Interval is a non-degenerate closed interval [Lo, Hi] with Lo < Hi.
type Interval struct {
	Lo, Hi float64
}

// Valid reports whether the interval is non-degenerate.
func (iv Interval) Valid() bool { return iv.Lo < iv.Hi }

// Length returns Hi − Lo.
func (iv Interval) Length() float64 { return iv.Hi - iv.Lo }

// ContainsPoint reports whether x lies in the closed interval.
func (iv Interval) ContainsPoint(x float64) bool { return iv.Lo <= x && x <= iv.Hi }

// Relate classifies the relation of the primary interval p with respect
// to the reference interval q. Both intervals must be non-degenerate;
// Relate panics otherwise, because a degenerate interval cannot arise
// from a valid MBR and silently misclassifying it would corrupt every
// layer built on top.
func Relate(p, q Interval) Relation {
	if !p.Valid() || !q.Valid() {
		panic(fmt.Sprintf("interval.Relate: degenerate interval p=%v q=%v", p, q))
	}
	switch {
	case p.Hi < q.Lo:
		return Before
	case p.Hi == q.Lo:
		return Meets
	case p.Lo > q.Hi:
		return After
	case p.Lo == q.Hi:
		return MetBy
	}
	// The intervals now share interior points.
	switch {
	case p.Lo < q.Lo:
		switch {
		case p.Hi < q.Hi:
			return Overlaps
		case p.Hi == q.Hi:
			return FinishedBy
		default:
			return Contains
		}
	case p.Lo == q.Lo:
		switch {
		case p.Hi < q.Hi:
			return Starts
		case p.Hi == q.Hi:
			return Equal
		default:
			return StartedBy
		}
	default: // p.Lo > q.Lo
		switch {
		case p.Hi < q.Hi:
			return During
		case p.Hi == q.Hi:
			return Finishes
		default:
			return OverlappedBy
		}
	}
}

// converseTable maps each relation to the relation that holds when the
// roles of primary and reference are exchanged.
var converseTable = [NumRelations + 1]Relation{
	0,
	After,        // Before
	MetBy,        // Meets
	OverlappedBy, // Overlaps
	Finishes,     // FinishedBy
	During,       // Contains
	StartedBy,    // Starts
	Equal,        // Equal
	Starts,       // StartedBy
	Contains,     // During
	FinishedBy,   // Finishes
	Overlaps,     // OverlappedBy
	Meets,        // MetBy
	Before,       // After
}

// Converse returns the relation of q with respect to p given the
// relation of p with respect to q.
func (r Relation) Converse() Relation {
	if !r.Valid() {
		panic(fmt.Sprintf("interval.Converse: invalid relation %d", uint8(r)))
	}
	return converseTable[r]
}

// SharesPoints reports whether intervals in relation r share at least
// one point (i.e. the relation is not Before/After).
func (r Relation) SharesPoints() bool { return r != Before && r != After }

// SharesInterior reports whether intervals in relation r share interior
// points (everything except Before, Meets, MetBy, After).
func (r Relation) SharesInterior() bool {
	return r.SharesPoints() && r != Meets && r != MetBy
}

// CoversRef reports whether the primary interval covers the reference
// (q ⊆ p): relations FinishedBy, Contains, Equal, StartedBy.
func (r Relation) CoversRef() bool {
	return r == FinishedBy || r == Contains || r == Equal || r == StartedBy
}

// CoveredByRef reports whether the primary interval is covered by the
// reference (p ⊆ q): relations Starts, Equal, During, Finishes.
func (r Relation) CoveredByRef() bool {
	return r == Starts || r == Equal || r == During || r == Finishes
}

// StrictlyContainsRef reports whether the primary strictly contains the
// reference in its interior (relation Contains only).
func (r Relation) StrictlyContainsRef() bool { return r == Contains }

// StrictlyInsideRef reports whether the primary lies strictly in the
// reference's interior (relation During only).
func (r Relation) StrictlyInsideRef() bool { return r == During }

// All returns the thirteen relations in numeric order. The slice is
// freshly allocated; callers may modify it.
func All() []Relation {
	out := make([]Relation, NumRelations)
	for i := range out {
		out[i] = Relation(i + 1)
	}
	return out
}
