package interval

// This file derives the two-sided analogue of Coverers, needed for
// spatial joins over two R-trees: if p has relation r to q, which
// relations can hold between an interval P ⊇ p and an interval Q ⊇ q?
// During a synchronized traversal both sides of a candidate pair are
// covered by their respective node rectangles, so a node pair can lead
// to leaf pairs in relation r only if the nodes' own relation lies in
// BiCoverers(r).
//
// Like Coverers, the derivation enumerates an integer grid fine enough
// to realise every ordering, making the table exact.

var biCoverersTable [NumRelations + 1]Set

// BiCoverers returns the set of relations possible between P ⊇ p and
// Q ⊇ q when p has relation r to q.
func BiCoverers(r Relation) Set {
	if !r.Valid() {
		panic("interval.BiCoverers: invalid relation")
	}
	return biCoverersTable[r]
}

func deriveBiCoverers() {
	q := Interval{refLo, refHi}
	for _, r := range All() {
		p := representative(r)
		var s Set
		// Enumerate enclosing intervals on both sides. All thresholds
		// are integers, so a unit-step integer grid realises every
		// ordering of the four endpoints.
		for a := p.Lo; a >= -4; a-- {
			for b := p.Hi; b <= 34; b++ {
				P := Interval{a, b}
				for c := q.Lo; c >= -4; c-- {
					for d := q.Hi; d <= 34; d++ {
						s = s.Add(Relate(P, Interval{c, d}))
					}
				}
			}
		}
		biCoverersTable[r] = s
	}
}

func init() {
	deriveBiCoverers()
}
