package interval

import "strings"

// Set is a set of interval relations, represented as a bitmask over
// R1..R13. The zero value is the empty set.
type Set uint16

// NewSet builds a set from the given relations.
func NewSet(rs ...Relation) Set {
	var s Set
	for _, r := range rs {
		s = s.Add(r)
	}
	return s
}

// FullSet contains all thirteen relations.
func FullSet() Set { return Set(1<<NumRelations) - 1 }

// Add returns s with r included.
func (s Set) Add(r Relation) Set { return s | 1<<(r-1) }

// Has reports whether r is in the set.
func (s Set) Has(r Relation) bool { return s&(1<<(r-1)) != 0 }

// Union returns the union of the two sets.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns the intersection of the two sets.
func (s Set) Intersect(t Set) Set { return s & t }

// Minus returns s with all members of t removed.
func (s Set) Minus(t Set) Set { return s &^ t }

// IsEmpty reports whether the set has no members.
func (s Set) IsEmpty() bool { return s == 0 }

// Len returns the number of relations in the set.
func (s Set) Len() int {
	n := 0
	for r := Relation(1); r <= NumRelations; r++ {
		if s.Has(r) {
			n++
		}
	}
	return n
}

// Relations returns the members in numeric order.
func (s Set) Relations() []Relation {
	out := make([]Relation, 0, s.Len())
	for r := Relation(1); r <= NumRelations; r++ {
		if s.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// Converse returns the set of converses of the members.
func (s Set) Converse() Set {
	var out Set
	for r := Relation(1); r <= NumRelations; r++ {
		if s.Has(r) {
			out = out.Add(r.Converse())
		}
	}
	return out
}

// String renders the set as "{before meets ...}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for r := Relation(1); r <= NumRelations; r++ {
		if s.Has(r) {
			if !first {
				b.WriteByte(' ')
			}
			b.WriteString(r.String())
			first = false
		}
	}
	b.WriteByte('}')
	return b.String()
}
