package interval

// This file derives, by exhaustive enumeration over an integer grid,
// two pieces of machinery the paper needs:
//
//  1. coverers: for a primary interval p with relation r to the
//     reference q, the set of relations that an interval P ⊇ p can have
//     with q. This is the 1D kernel of the paper's Table 2 (which
//     relations an intermediate R-tree node must satisfy so that it may
//     contain a qualifying MBR): an intermediate node's rectangle covers
//     the rectangles below it, per axis.
//
//  2. the conceptual-neighbourhood graphs of Figure 14: the relation
//     reached first when the primary (14a) or the reference (14b)
//     interval is continuously enlarged, from which first- and
//     second-degree neighbours (Section 6, non-crisp MBRs) follow.
//
// Both derivations are exact, not sampled: interval relations are
// order types of four endpoints, so an integer grid fine enough to
// realise every ordering enumerates the full configuration space. The
// results depend only on the relation (its sign pattern), never on the
// chosen representative; TestDeriveRepresentativeIndependence verifies
// this.

// refLo, refHi delimit the canonical reference interval used by all
// derivations. Representatives keep a margin of ≥2 grid units from
// every threshold on strict inequalities so that enumeration realises
// every sign pattern.
const (
	refLo = 10.0
	refHi = 20.0
)

// representative returns a canonical primary interval standing in
// relation r to the canonical reference [refLo, refHi].
func representative(r Relation) Interval {
	switch r {
	case Before:
		return Interval{2, 6}
	case Meets:
		return Interval{4, 10}
	case Overlaps:
		return Interval{6, 14}
	case FinishedBy:
		return Interval{6, 20}
	case Contains:
		return Interval{6, 24}
	case Starts:
		return Interval{10, 14}
	case Equal:
		return Interval{10, 20}
	case StartedBy:
		return Interval{10, 24}
	case During:
		return Interval{13, 17}
	case Finishes:
		return Interval{14, 20}
	case OverlappedBy:
		return Interval{14, 24}
	case MetBy:
		return Interval{20, 26}
	case After:
		return Interval{24, 28}
	}
	panic("interval: no representative for invalid relation")
}

// coverersTable[r] is the set of relations an enclosing interval P ⊇ p
// may have with the reference, given that p has relation r. Computed at
// package initialisation by deriveCoverers.
var coverersTable [NumRelations + 1]Set

// Coverers returns the set of relations that an interval containing an
// interval in relation r to the reference may itself have to the
// reference. This is the per-axis propagation rule behind the paper's
// Table 2: an R-tree node rectangle contains every MBR stored beneath
// it, so a node can lead to MBRs in relation r only if the node's own
// relation is in Coverers(r).
func Coverers(r Relation) Set {
	if !r.Valid() {
		panic("interval.Coverers: invalid relation")
	}
	return coverersTable[r]
}

func deriveCoverers() {
	q := Interval{refLo, refHi}
	for _, r := range All() {
		p := representative(r)
		var s Set
		// Enumerate all grid intervals [a, b] with a ≤ p.Lo, b ≥ p.Hi.
		// Grid step 1 over [0, 32] realises every ordering of a and b
		// against the thresholds refLo and refHi.
		for a := 0.0; a <= p.Lo; a++ {
			for b := p.Hi; b <= 32; b++ {
				s = s.Add(Relate(Interval{a, b}, q))
			}
		}
		coverersTable[r] = s
	}
}

// growPrimaryEdges[r] / growReferenceEdges[r] are the directed edges of
// the conceptual-neighbourhood graphs of the paper's Figure 14: the
// relations reached first when one endpoint of the primary (resp.
// reference) interval is continuously enlarged.
var (
	growPrimaryEdges   [NumRelations + 1]Set
	growReferenceEdges [NumRelations + 1]Set
)

// GrowPrimaryNeighbours returns the relations reachable from r by a
// single continuous enlargement of the primary interval (Figure 14a).
func GrowPrimaryNeighbours(r Relation) Set {
	if !r.Valid() {
		panic("interval.GrowPrimaryNeighbours: invalid relation")
	}
	return growPrimaryEdges[r]
}

// GrowReferenceNeighbours returns the relations reachable from r by a
// single continuous enlargement of the reference interval (Figure 14b).
func GrowReferenceNeighbours(r Relation) Set {
	if !r.Valid() {
		panic("interval.GrowReferenceNeighbours: invalid relation")
	}
	return growReferenceEdges[r]
}

// firstNeighbour simulates growing one endpoint along trajectory f(t)
// (t > 0) and returns the first relation different from the current one,
// or 0 if the relation never changes. eps must be small enough not to
// cross any threshold from a strict position; events lists the
// thresholds the moving endpoint can cross, in the order encountered.
func firstNeighbour(cur Relation, classify func(t float64) Relation, eps float64, events []float64) Relation {
	if n := classify(eps); n != cur {
		return n
	}
	for _, t := range events {
		if n := classify(t); n != cur {
			return n
		}
	}
	return 0
}

func deriveNeighbourhoods() {
	q := Interval{refLo, refHi}
	for _, r := range All() {
		p := representative(r)

		var prim Set
		// Enlarge primary rightwards: p.Hi + t crosses refLo then refHi.
		{
			var events []float64
			for _, v := range []float64{refLo, refHi} {
				if v > p.Hi {
					events = append(events, v-p.Hi)
				}
			}
			if n := firstNeighbour(r, func(t float64) Relation {
				return Relate(Interval{p.Lo, p.Hi + t}, q)
			}, 0.5, events); n != 0 {
				prim = prim.Add(n)
			}
		}
		// Enlarge primary leftwards: p.Lo − t crosses refHi then refLo.
		{
			var events []float64
			for _, v := range []float64{refHi, refLo} {
				if v < p.Lo {
					events = append(events, p.Lo-v)
				}
			}
			if n := firstNeighbour(r, func(t float64) Relation {
				return Relate(Interval{p.Lo - t, p.Hi}, q)
			}, 0.5, events); n != 0 {
				prim = prim.Add(n)
			}
		}
		growPrimaryEdges[r] = prim

		var ref Set
		// Enlarge reference rightwards: q.Hi + t crosses p.Lo, p.Hi.
		{
			var events []float64
			for _, v := range []float64{p.Lo, p.Hi} {
				if v > refHi {
					events = append(events, v-refHi)
				}
			}
			if n := firstNeighbour(r, func(t float64) Relation {
				return Relate(p, Interval{refLo, refHi + t})
			}, 0.5, events); n != 0 {
				ref = ref.Add(n)
			}
		}
		// Enlarge reference leftwards: q.Lo − t crosses p.Hi, p.Lo.
		{
			var events []float64
			for _, v := range []float64{p.Hi, p.Lo} {
				if v < refLo {
					events = append(events, refLo-v)
				}
			}
			if n := firstNeighbour(r, func(t float64) Relation {
				return Relate(p, Interval{refLo - t, refHi})
			}, 0.5, events); n != 0 {
				ref = ref.Add(n)
			}
		}
		growReferenceEdges[r] = ref
	}
}

var (
	firstDegreeTable  [NumRelations + 1]Set
	secondDegreeTable [NumRelations + 1]Set
)

// FirstDegreeNeighbours returns the first-degree conceptual neighbours
// of r: relations reachable via a directed edge in either neighbourhood
// graph (paper, Section 6).
func FirstDegreeNeighbours(r Relation) Set {
	if !r.Valid() {
		panic("interval.FirstDegreeNeighbours: invalid relation")
	}
	return firstDegreeTable[r]
}

// SecondDegreeNeighbours returns the second-degree conceptual
// neighbours of r: relations (other than r and its first-degree
// neighbours) that share at least two first-degree neighbours with r.
func SecondDegreeNeighbours(r Relation) Set {
	if !r.Valid() {
		panic("interval.SecondDegreeNeighbours: invalid relation")
	}
	return secondDegreeTable[r]
}

// Neighbourhood2 returns {r} ∪ first-degree ∪ second-degree neighbours
// of r: the set of relations a slightly-larger-than-crisp MBR pair may
// exhibit per axis when the crisp pair exhibits r (Table 5 expansion).
func Neighbourhood2(r Relation) Set {
	return NewSet(r).Union(FirstDegreeNeighbours(r)).Union(SecondDegreeNeighbours(r))
}

func deriveDegrees() {
	for _, r := range All() {
		firstDegreeTable[r] = growPrimaryEdges[r].Union(growReferenceEdges[r])
	}
	for _, r := range All() {
		var second Set
		n1 := firstDegreeTable[r]
		for _, j := range All() {
			if j == r || n1.Has(j) {
				continue
			}
			if firstDegreeTable[j].Intersect(n1).Len() >= 2 {
				second = second.Add(j)
			}
		}
		secondDegreeTable[r] = second
	}
}

func init() {
	deriveCoverers()
	deriveNeighbourhoods()
	deriveDegrees()
}
