// External test package: the Table 5 agreement checks need mbr, which
// imports interval — an internal test file would cycle.
package interval_test

import (
	"math/rand"
	"testing"

	"mbrtopo/internal/interval"
	"mbrtopo/internal/mbr"
	"mbrtopo/internal/topo"
)

// TestGrowConverseDuality: growing the reference of (p r q) is growing
// the primary in the converse frame, so the two derived edge sets must
// be converse-duals of each other — for every relation, both ways.
func TestGrowConverseDuality(t *testing.T) {
	for _, r := range interval.All() {
		want := interval.GrowPrimaryNeighbours(r.Converse()).Converse()
		if got := interval.GrowReferenceNeighbours(r); got != want {
			t.Errorf("grow-reference(%v) = %v, want converse-dual %v", r, got, want)
		}
		want = interval.GrowReferenceNeighbours(r.Converse()).Converse()
		if got := interval.GrowPrimaryNeighbours(r); got != want {
			t.Errorf("grow-primary(%v) = %v, want converse-dual %v", r, got, want)
		}
	}
}

// TestGrowEdgeEndpoints pins the directed boundary edges the paper's
// Figure 14 walk implies: the only move out of before/after is onto
// the meeting boundary, and growth never leaves a relation in place.
func TestGrowEdgeEndpoints(t *testing.T) {
	if got := interval.GrowPrimaryNeighbours(interval.Before); got != interval.NewSet(interval.Meets) {
		t.Errorf("grow-primary(before) = %v, want {meets}", got)
	}
	if got := interval.GrowPrimaryNeighbours(interval.After); got != interval.NewSet(interval.MetBy) {
		t.Errorf("grow-primary(after) = %v, want {metBy}", got)
	}
	for _, r := range interval.All() {
		if interval.GrowPrimaryNeighbours(r).Has(r) || interval.GrowReferenceNeighbours(r).Has(r) {
			t.Errorf("relation %v is its own growth neighbour", r)
		}
	}
}

// TestGrowGraphConnected: the undirected closure of both growth graphs
// must connect all 13 relations — otherwise some relation change could
// never be explained by a sequence of neighbourhood moves, and the
// watch notifier's reachability pruning would be unsound.
func TestGrowGraphConnected(t *testing.T) {
	adj := make(map[interval.Relation]interval.Set)
	for _, r := range interval.All() {
		out := interval.GrowPrimaryNeighbours(r).Union(interval.GrowReferenceNeighbours(r))
		adj[r] = adj[r].Union(out)
		for _, n := range out.Relations() {
			adj[n] = adj[n].Add(r)
		}
	}
	seen := interval.NewSet(interval.Before)
	queue := []interval.Relation{interval.Before}
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		for _, n := range adj[r].Relations() {
			if !seen.Has(n) {
				seen = seen.Add(n)
				queue = append(queue, n)
			}
		}
	}
	if seen.Len() != interval.NumRelations {
		t.Fatalf("undirected growth graph reaches %d of %d relations: %v",
			seen.Len(), interval.NumRelations, seen)
	}
}

// TestShrinkIsReverseGrowth: shrinking an interval traverses the
// growth edges backwards. For random configurations, a tiny shrink of
// one endpoint must land on a relation whose growth edge leads back —
// the symmetry that justifies treating the directed growth graphs as
// undirected when bounding what a moving object can do.
func TestShrinkIsReverseGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	q := interval.Interval{Lo: 10, Hi: 20}
	const eps = 1e-9
	for i := 0; i < 100000; i++ {
		lo := rng.Float64()*34 - 2
		hi := lo + 0.5 + rng.Float64()*30
		p := interval.Interval{Lo: lo, Hi: hi}
		r := interval.Relate(p, q)
		for _, p2 := range []interval.Interval{{Lo: lo + eps, Hi: hi}, {Lo: lo, Hi: hi - eps}} {
			s := interval.Relate(p2, q)
			if s == r {
				continue
			}
			if !interval.GrowPrimaryNeighbours(s).Has(r) {
				t.Fatalf("shrinking primary %v → %v moved %v → %v, but grow-primary(%v) = %v misses %v",
					p, p2, r, s, s, interval.GrowPrimaryNeighbours(s), r)
			}
		}
		for _, q2 := range []interval.Interval{{Lo: q.Lo + eps, Hi: q.Hi}, {Lo: q.Lo, Hi: q.Hi - eps}} {
			s := interval.Relate(p, q2)
			if s == r {
				continue
			}
			if !interval.GrowReferenceNeighbours(s).Has(r) {
				t.Fatalf("shrinking reference %v → %v moved %v → %v, but grow-reference(%v) = %v misses %v",
					q, q2, r, s, s, interval.GrowReferenceNeighbours(s), r)
			}
		}
	}
}

// TestNeighbourhood2AgreesWithTable5 recomputes the Table 5 expansion
// used by internal/experiments/table5.go — per-axis Neighbourhood2
// products over the crisp Table 1 configurations — directly from the
// interval primitives and checks mbr.CandidatesNonCrisp matches,
// along with the paper's headline counts for equal.
func TestNeighbourhood2AgreesWithTable5(t *testing.T) {
	for _, rel := range topo.All() {
		crisp := mbr.Candidates(rel)
		var want mbr.ConfigSet
		for _, c := range crisp.Configs() {
			want = want.Union(mbr.ProductSet(interval.Neighbourhood2(c.X), interval.Neighbourhood2(c.Y)))
		}
		got := mbr.CandidatesNonCrisp(rel)
		if !got.Equal(want) {
			t.Errorf("%v: CandidatesNonCrisp has %d configs, interval-level recomputation has %d",
				rel, got.Len(), want.Len())
		}
		if !crisp.SubsetOf(got) {
			t.Errorf("%v: tolerant set does not contain the crisp set", rel)
		}
	}
	// Table 5's equal row: 1 crisp configuration grows to 81 — the
	// square of |Neighbourhood2(equal)| = 9.
	if n := interval.Neighbourhood2(interval.Equal).Len(); n != 9 {
		t.Errorf("Neighbourhood2(equal) has %d relations, want 9", n)
	}
	if n := mbr.CandidatesNonCrisp(topo.Equal).Len(); n != 81 {
		t.Errorf("CandidatesNonCrisp(equal) has %d configs, want 81", n)
	}
	if n := mbr.Candidates(topo.Equal).Len(); n != 1 {
		t.Errorf("Candidates(equal) has %d configs, want 1", n)
	}
}
