package interval

import (
	"math/rand"
	"testing"
)

// TestFeasibleWithinSound: whenever an interval p in relation r to q
// shares interior points with a region, FeasibleWithin(region, q) must
// contain r; and every feasible relation must be witnessed by some
// interval (sampled on a grid including the thresholds).
func TestFeasibleWithinSound(t *testing.T) {
	q := Interval{refLo, refHi}
	var grid []float64
	for v := -2.0; v <= 34; v += 0.5 {
		grid = append(grid, v)
	}
	regions := []Interval{
		{0, 5}, {0, 10}, {5, 15}, {10, 20}, {9, 11}, {19, 21},
		{12, 18}, {20, 30}, {25, 30}, {-2, 34}, {9.75, 10.25},
	}
	for _, reg := range regions {
		feas := FeasibleWithin(reg, q)
		// Refine the grid near the region's edges so that narrow
		// regions still get witnesses.
		local := append([]float64(nil), grid...)
		for _, v := range []float64{reg.Lo - 0.1, reg.Lo + 0.1, reg.Hi - 0.1, reg.Hi + 0.1, (reg.Lo + reg.Hi) / 2} {
			local = append(local, v)
		}
		var witnessed Set
		for _, lo := range local {
			for _, hi := range local {
				if hi <= lo {
					continue
				}
				p := Interval{lo, hi}
				overlapsRegion := p.Lo < reg.Hi && reg.Lo < p.Hi
				r := Relate(p, q)
				if overlapsRegion {
					if !feas.Has(r) {
						t.Fatalf("region %v: interval %v (relation %v) meets region but FeasibleWithin = %v",
							reg, p, r, feas)
					}
					witnessed = witnessed.Add(r)
				}
			}
		}
		if missing := feas.Minus(witnessed); !missing.IsEmpty() {
			t.Errorf("region %v: feasible relations %v never witnessed", reg, missing)
		}
	}
}

// TestFeasibleWithinMonotone: growing the region can only add feasible
// relations (needed for sound pruning at upper R+-tree levels, where a
// node's region contains all descendant regions).
func TestFeasibleWithinMonotone(t *testing.T) {
	q := Interval{refLo, refHi}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 20000; i++ {
		lo := rng.Float64()*30 - 2
		hi := lo + 0.1 + rng.Float64()*20
		inner := Interval{lo, hi}
		outer := Interval{lo - rng.Float64()*5, hi + rng.Float64()*5}
		in, out := FeasibleWithin(inner, q), FeasibleWithin(outer, q)
		if in.Minus(out) != 0 {
			t.Fatalf("inner %v feasible %v ⊄ outer %v feasible %v", inner, in, outer, out)
		}
	}
}
