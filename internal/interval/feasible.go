package interval

import "math"

// reachableSpan returns the union of the interiors of all intervals
// standing in relation r to the reference q, as an open interval
// (lo, hi). For example, every interval before q has its interior in
// (−∞, q.Lo), and the union over all of them is exactly that span.
// These spans drive the R+-tree node predicate: a partition region can
// lead to an MBR in relation r exactly when the region's interior
// meets the reachable span (per axis).
func reachableSpan(r Relation, q Interval) (lo, hi float64) {
	switch r {
	case Before, Meets:
		return math.Inf(-1), q.Lo
	case Overlaps, FinishedBy:
		return math.Inf(-1), q.Hi
	case Contains:
		return math.Inf(-1), math.Inf(1)
	case Starts, Equal, During, Finishes:
		return q.Lo, q.Hi
	case StartedBy, OverlappedBy:
		return q.Lo, math.Inf(1)
	case MetBy, After:
		return q.Hi, math.Inf(1)
	}
	panic("interval.reachableSpan: invalid relation")
}

// FeasibleWithin returns the set of relations r for which some
// interval standing in relation r to q has interior points inside the
// open region (region.Lo, region.Hi).
func FeasibleWithin(region, q Interval) Set {
	var s Set
	for _, r := range All() {
		lo, hi := reachableSpan(r, q)
		if lo < region.Hi && region.Lo < hi {
			s = s.Add(r)
		}
	}
	return s
}
