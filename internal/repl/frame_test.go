package repl

import (
	"bytes"
	"io"
	"testing"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/wal"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	hello := Hello{Bootstrap: true, Gen: 3, Seq: 41, SnapSize: 1 << 20}
	rec := wal.Record{Op: wal.OpInsert, OID: 99, Rect: geom.R(1, 2, 3, 4)}
	if err := WriteFrame(&buf, FrameHello, EncodeHello(hello)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, FrameRecord, EncodeRecord(3, 42, wal.MarshalRecord(rec))); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, FrameRotate, EncodePosition(4, 0)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, FrameSnapEnd, nil); err != nil {
		t.Fatal(err)
	}

	fr := NewFrameReader(&buf)
	typ, p, err := fr.ReadFrame()
	if err != nil || typ != FrameHello {
		t.Fatalf("frame 1: typ=%v err=%v", typ, err)
	}
	if got, err := DecodeHello(p); err != nil || got != hello {
		t.Fatalf("hello: got %+v err=%v", got, err)
	}
	typ, p, err = fr.ReadFrame()
	if err != nil || typ != FrameRecord {
		t.Fatalf("frame 2: typ=%v err=%v", typ, err)
	}
	gen, seq, wp, err := DecodeRecord(p)
	if err != nil || gen != 3 || seq != 42 {
		t.Fatalf("record position: %d/%d err=%v", gen, seq, err)
	}
	if got, ok := wal.UnmarshalRecord(wp); !ok || got != rec {
		t.Fatalf("record payload: got %+v ok=%v", got, ok)
	}
	typ, p, err = fr.ReadFrame()
	if err != nil || typ != FrameRotate {
		t.Fatalf("frame 3: typ=%v err=%v", typ, err)
	}
	if gen, _, err := DecodePosition(p); err != nil || gen != 4 {
		t.Fatalf("rotate: gen=%d err=%v", gen, err)
	}
	typ, p, err = fr.ReadFrame()
	if err != nil || typ != FrameSnapEnd || len(p) != 0 {
		t.Fatalf("frame 4: typ=%v len=%d err=%v", typ, len(p), err)
	}
	if _, _, err := fr.ReadFrame(); err != io.EOF {
		t.Fatalf("expected EOF at stream end, got %v", err)
	}
}

// TestFrameReaderRejectsDamage flips every byte of a two-frame stream
// in turn: the reader must error (or report clean EOF early) — never
// hand back a frame whose payload differs from what was written.
func TestFrameReaderRejectsDamage(t *testing.T) {
	var buf bytes.Buffer
	rec := wal.Record{Op: wal.OpDelete, OID: 7, Rect: geom.R(0, 0, 1, 1)}
	if err := WriteFrame(&buf, FrameRecord, EncodeRecord(1, 1, wal.MarshalRecord(rec))); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, FrameHeartbeat, EncodePosition(1, 1)); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for i := range clean {
		bad := append([]byte(nil), clean...)
		bad[i] ^= 0x01
		fr := NewFrameReader(bytes.NewReader(bad))
		for {
			typ, p, err := fr.ReadFrame()
			if err != nil {
				break // damage detected (or stream consumed by a lying length)
			}
			if typ == FrameRecord {
				gen, seq, wp, derr := DecodeRecord(p)
				if derr == nil && gen == 1 && seq == 1 {
					if got, ok := wal.UnmarshalRecord(wp); ok && got != rec {
						t.Fatalf("flip at %d: decoded a different record %+v", i, got)
					}
				}
			}
		}
	}
}

func TestFrameLengthBound(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameSnapChunk, make([]byte, maxPayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
	// A header advertising an impossible length must error without
	// allocating or reading the claimed payload.
	hdr := []byte{byte(FrameSnapChunk), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	fr := NewFrameReader(bytes.NewReader(hdr))
	if _, _, err := fr.ReadFrame(); err == nil {
		t.Fatal("impossible length accepted")
	}
}

func TestLagRecords(t *testing.T) {
	cases := []struct {
		applied, primary Position
		want             uint64
	}{
		{Position{1, 5}, Position{1, 5}, 0},
		{Position{1, 5}, Position{1, 9}, 4},
		{Position{1, 9}, Position{1, 5}, 0}, // primary heartbeat raced an applied record
		{Position{1, 9}, Position{2, 3}, 4}, // unknown across gens: lower bound + pending rotate
		{Position{2, 0}, Position{2, 0}, 0},
	}
	for _, c := range cases {
		if got := lagRecords(c.applied, c.primary); got != c.want {
			t.Errorf("lag(%v, %v) = %d, want %d", c.applied, c.primary, got, c.want)
		}
	}
}
