// Package repl implements WAL-shipping replication: a primary streams
// its current snapshot plus a live tail of WAL records over one HTTP
// response, and a follower applies them through the same replay path
// recovery uses, republishing read roots after every record.
//
// The stream is a sequence of self-delimiting frames:
//
//	typ     u8
//	length  u32 little endian — payload bytes
//	crc32c  u32 little endian — over the payload
//	payload length bytes, per type:
//	    hello      mode u8 (0 resume, 1 bootstrap), gen u64, seq u64, snapSize u64
//	    snapChunk  raw flat-snapshot bytes
//	    snapEnd    (empty)
//	    record     gen u64, seq u64, wal payload (wal.PayloadSize bytes)
//	    rotate     newGen u64
//	    heartbeat  gen u64, seq u64
//
// A stream opens with exactly one hello. In bootstrap mode it is
// followed by snapChunk frames totalling snapSize bytes, then snapEnd;
// in resume mode the record tail starts immediately. Positions are
// (generation, sequence): the generation increments at each primary
// checkpoint, the sequence counts records within a generation starting
// at 1. A rotate frame marks a checkpoint observed mid-stream — the
// records that follow belong to the new generation, sequence restarting
// at 1. Heartbeats carry the primary's position so an idle follower can
// tell lag from a dead link.
//
// Every frame is checksummed, so a corrupted or truncated stream is
// detected at the frame layer and surfaces as a read error; the
// follower then reconnects and resumes from its last applied position,
// never applying a damaged or duplicate record.
package repl

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// FrameType tags a replication stream frame.
type FrameType uint8

// The frame types, in the order they can appear on a stream.
const (
	FrameHello     FrameType = 1
	FrameSnapChunk FrameType = 2
	FrameSnapEnd   FrameType = 3
	FrameRecord    FrameType = 4
	FrameRotate    FrameType = 5
	FrameHeartbeat FrameType = 6
)

func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameSnapChunk:
		return "snapChunk"
	case FrameSnapEnd:
		return "snapEnd"
	case FrameRecord:
		return "record"
	case FrameRotate:
		return "rotate"
	case FrameHeartbeat:
		return "heartbeat"
	}
	return fmt.Sprintf("repl.FrameType(%d)", uint8(t))
}

const (
	frameHeaderSize = 1 + 4 + 4
	// SnapChunkSize is how much snapshot a single snapChunk frame
	// carries; it also bounds every other payload, so a corrupted
	// length field cannot drive a giant allocation.
	SnapChunkSize = 256 << 10
	maxPayload    = SnapChunkSize
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, typ FrameType, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("repl: %s frame payload %d exceeds %d", typ, len(payload), maxPayload)
	}
	var hdr [frameHeaderSize]byte
	hdr[0] = byte(typ)
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// FrameReader decodes frames from a stream, reusing one payload
// buffer. The returned payload slice is valid until the next ReadFrame
// call.
type FrameReader struct {
	r   io.Reader
	hdr [frameHeaderSize]byte
	buf []byte
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// ReadFrame reads and verifies the next frame. A short read, a bad
// checksum, or an impossible length is an error: the replication
// stream has no torn-tail tolerance — any damage means "drop the
// connection and resume from the last applied position".
func (fr *FrameReader) ReadFrame() (FrameType, []byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return 0, nil, err
	}
	typ := FrameType(fr.hdr[0])
	length := binary.LittleEndian.Uint32(fr.hdr[1:5])
	sum := binary.LittleEndian.Uint32(fr.hdr[5:9])
	if length > maxPayload {
		return 0, nil, fmt.Errorf("repl: %s frame length %d exceeds %d", typ, length, maxPayload)
	}
	if cap(fr.buf) < int(length) {
		fr.buf = make([]byte, length)
	}
	payload := fr.buf[:length]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("repl: %s frame payload: %w", typ, err)
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return 0, nil, fmt.Errorf("repl: %s frame checksum mismatch", typ)
	}
	return typ, payload, nil
}

// Hello is the stream-opening frame: the primary's decision on how
// this follower catches up, and the position the stream starts from.
type Hello struct {
	// Bootstrap reports whether a snapshot transfer precedes the
	// record tail (the follower's requested position was not
	// resumable).
	Bootstrap bool
	// Gen and Seq are the position the stream starts from: after the
	// snapshot (bootstrap) or the follower's own position (resume),
	// the next record frame carries Seq+1 within Gen.
	Gen, Seq uint64
	// SnapSize is the exact snapshot byte length in bootstrap mode,
	// zero in resume mode.
	SnapSize uint64
}

// EncodeHello encodes h as a hello payload.
func EncodeHello(h Hello) []byte {
	p := make([]byte, 1+8+8+8)
	if h.Bootstrap {
		p[0] = 1
	}
	binary.LittleEndian.PutUint64(p[1:9], h.Gen)
	binary.LittleEndian.PutUint64(p[9:17], h.Seq)
	binary.LittleEndian.PutUint64(p[17:25], h.SnapSize)
	return p
}

// DecodeHello decodes a hello payload.
func DecodeHello(p []byte) (Hello, error) {
	if len(p) != 1+8+8+8 || p[0] > 1 {
		return Hello{}, fmt.Errorf("repl: malformed hello payload (%d bytes)", len(p))
	}
	return Hello{
		Bootstrap: p[0] == 1,
		Gen:       binary.LittleEndian.Uint64(p[1:9]),
		Seq:       binary.LittleEndian.Uint64(p[9:17]),
		SnapSize:  binary.LittleEndian.Uint64(p[17:25]),
	}, nil
}

// EncodeRecord encodes a record payload: the position (gen, seq) the
// record commits, followed by the raw WAL payload bytes.
func EncodeRecord(gen, seq uint64, walPayload []byte) []byte {
	p := make([]byte, 8+8+len(walPayload))
	binary.LittleEndian.PutUint64(p[0:8], gen)
	binary.LittleEndian.PutUint64(p[8:16], seq)
	copy(p[16:], walPayload)
	return p
}

// DecodeRecord splits a record payload into position and WAL payload.
func DecodeRecord(p []byte) (gen, seq uint64, walPayload []byte, err error) {
	if len(p) <= 16 {
		return 0, 0, nil, fmt.Errorf("repl: malformed record payload (%d bytes)", len(p))
	}
	return binary.LittleEndian.Uint64(p[0:8]),
		binary.LittleEndian.Uint64(p[8:16]),
		p[16:], nil
}

// EncodePosition encodes (gen, seq) — the rotate payload carries just
// a generation (seq unused), heartbeats carry both.
func EncodePosition(gen, seq uint64) []byte {
	p := make([]byte, 16)
	binary.LittleEndian.PutUint64(p[0:8], gen)
	binary.LittleEndian.PutUint64(p[8:16], seq)
	return p
}

// DecodePosition decodes a rotate or heartbeat payload.
func DecodePosition(p []byte) (gen, seq uint64, err error) {
	if len(p) != 16 {
		return 0, 0, fmt.Errorf("repl: malformed position payload (%d bytes)", len(p))
	}
	return binary.LittleEndian.Uint64(p[0:8]), binary.LittleEndian.Uint64(p[8:16]), nil
}
