package repl

import (
	"io"
	"net"
	"sync"
)

// FaultMode selects what a FaultConn does to the byte stream when its
// trigger offset is reached.
type FaultMode int

const (
	// FaultTruncate cuts the connection exactly at the offset: the
	// reader sees the prefix, then an unexpected EOF.
	FaultTruncate FaultMode = iota
	// FaultCorrupt flips a bit in the byte at the offset and lets the
	// stream continue — the damage must be caught by checksums.
	FaultCorrupt
	// FaultStall delivers the prefix and then blocks reads forever
	// (half-dead link): only a reader-side timeout gets out.
	FaultStall
)

func (m FaultMode) String() string {
	switch m {
	case FaultTruncate:
		return "truncate"
	case FaultCorrupt:
		return "corrupt"
	case FaultStall:
		return "stall"
	}
	return "unknown"
}

// FaultConn wraps a net.Conn and injects one read-side fault at an
// exact byte offset of the inbound stream — the connection analogue of
// pagefile.CrashFile. The replication fault sweep dials the primary
// through it and asserts the follower recovers to bit-identical
// answers whatever the offset hits: a frame header, a snapshot chunk,
// a record payload.
type FaultConn struct {
	net.Conn
	mode FaultMode
	at   int64 // inbound byte offset the fault fires at

	mu      sync.Mutex
	off     int64 // inbound bytes delivered so far
	tripped bool

	closed    chan struct{}
	closeOnce sync.Once
}

// NewFaultConn arms a fault at inbound byte offset at of conn.
func NewFaultConn(conn net.Conn, mode FaultMode, at int64) *FaultConn {
	return &FaultConn{Conn: conn, mode: mode, at: at, closed: make(chan struct{})}
}

// Tripped reports whether the fault has fired.
func (c *FaultConn) Tripped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tripped
}

// Close unblocks a stalled read and closes the underlying connection.
func (c *FaultConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// Read delivers inbound bytes, firing the armed fault when the stream
// offset crosses the trigger.
func (c *FaultConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.tripped {
		switch c.mode {
		case FaultStall:
			c.mu.Unlock()
			<-c.closed
			return 0, net.ErrClosed
		case FaultTruncate:
			c.mu.Unlock()
			return 0, io.ErrUnexpectedEOF
		}
		// FaultCorrupt already did its damage: pass through.
		c.mu.Unlock()
		return c.Conn.Read(p)
	}
	if headroom := c.at - c.off; headroom == 0 {
		c.tripped = true
		switch c.mode {
		case FaultTruncate:
			c.mu.Unlock()
			_ = c.Conn.Close()
			return 0, io.ErrUnexpectedEOF
		case FaultStall:
			c.mu.Unlock()
			<-c.closed
			return 0, net.ErrClosed
		}
		// FaultCorrupt: read on, then flip a bit in the trigger byte.
		c.mu.Unlock()
		n, err := c.Conn.Read(p)
		if n > 0 {
			p[0] ^= 0x80
		}
		return n, err
	} else if headroom > 0 && int64(len(p)) > headroom {
		// Stop the read at the trigger so the fault fires on an exact
		// byte boundary.
		p = p[:headroom]
	}
	c.mu.Unlock()
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.off += int64(n)
	c.mu.Unlock()
	return n, err
}
