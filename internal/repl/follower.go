package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"mbrtopo/internal/retry"
	"mbrtopo/internal/wal"
)

// Position is a point in a primary's WAL history: Gen is the
// checkpoint generation, Seq counts records within it (1-based; Seq 0
// means "generation just opened, nothing applied yet").
type Position struct {
	Gen uint64
	Seq uint64
}

func (p Position) String() string { return fmt.Sprintf("%d/%d", p.Gen, p.Seq) }

// ErrOutOfSync is returned by a Target when a record does not follow
// its applied position. The follower reacts by dropping the stream and
// reconnecting in bootstrap mode — it never applies out of order and
// never re-applies.
var ErrOutOfSync = errors.New("repl: record does not follow the applied position")

// Target is the local application surface a Follower drives. All
// methods are called from the follower's single Run goroutine.
type Target interface {
	// Position returns the last applied position and whether the
	// target holds a bootstrapped dataset at all.
	Position() (pos Position, bootstrapped bool)
	// Bootstrap replaces the target's dataset with the snapshot read
	// from snap (size bytes, flat format) and sets the applied
	// position to pos. It must consume snap fully on success.
	Bootstrap(pos Position, snap io.Reader, size int64) error
	// Apply applies one record committing position pos. It must
	// return ErrOutOfSync (wrapped or not) when pos is not the
	// successor of the applied position.
	Apply(pos Position, rec wal.Record) error
	// Rotate moves the target into generation newGen (the primary
	// checkpointed), which must be the successor of the applied
	// generation; the applied position becomes {newGen, 0}.
	Rotate(newGen uint64) error
}

// Config parameterises a Follower.
type Config struct {
	// Primary is the primary's base URL (e.g. "http://10.0.0.1:8080").
	Primary string
	// Index is the index name to replicate.
	Index string
	// Target receives the replicated state.
	Target Target
	// Client issues the stream requests; it must not set a Timeout
	// (the stream is long-lived). Defaults to a dedicated client.
	Client *http.Client
	// Backoff is the reconnect schedule (zero value = retry defaults).
	Backoff retry.Policy
	// StallTimeout drops a stream that delivers no frame for this
	// long; the primary heartbeats well inside it (default 3s).
	StallTimeout time.Duration
	// Seed seeds the backoff jitter (0 = fixed default seed; the
	// schedule is jittered either way).
	Seed int64
}

// Status is a snapshot of a follower's replication state.
type Status struct {
	// Connected reports a live stream (hello received, no error yet).
	Connected bool
	// Bootstrapped reports whether the target holds a dataset.
	Bootstrapped bool
	// Applied is the last locally applied position.
	Applied Position
	// Primary is the primary's position as last advertised (records,
	// heartbeats, hello).
	Primary Position
	// LagRecords is the record count between Applied and Primary.
	LagRecords uint64
	// LastContact is when the last frame arrived.
	LastContact time.Time
	// Reconnects counts stream re-establishment attempts after the
	// first connection.
	Reconnects uint64
	// Snapshots counts bootstrap snapshot transfers.
	Snapshots uint64
	// Records counts applied record frames.
	Records uint64
	// Bytes counts stream bytes received.
	Bytes uint64
}

// Follower replicates one index from a primary: it connects to
// /v1/replicate, bootstraps from the streamed snapshot when it cannot
// resume, applies the record tail through its Target, and reconnects
// with capped jittered exponential backoff on any stream error,
// resuming from the last applied position.
type Follower struct {
	cfg Config
	rng *rand.Rand

	mu             sync.Mutex
	connected      bool
	applied        Position
	bootstrapped   bool
	primary        Position
	lastContact    time.Time
	reconnects     uint64
	snapshots      uint64
	records        uint64
	bytes          uint64
	forceBootstrap bool
	lastErr        error
}

// NewFollower builds a follower; call Run to start replicating.
func NewFollower(cfg Config) *Follower {
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 3 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	f := &Follower{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	if pos, ok := cfg.Target.Position(); ok {
		f.applied, f.bootstrapped = pos, true
	}
	return f
}

// Run replicates until ctx is cancelled; it returns ctx.Err(). Stream
// errors are absorbed: the follower backs off and reconnects, resuming
// from the last applied position (or re-bootstrapping when the
// primary's history no longer contains it).
func (f *Follower) Run(ctx context.Context) error {
	for attempt := 0; ; attempt++ {
		progressed, err := f.streamOnce(ctx)
		f.mu.Lock()
		f.connected = false
		f.lastErr = err
		f.reconnects++
		f.mu.Unlock()
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if progressed {
			// The link worked: restart the backoff schedule.
			attempt = 0
		}
		if err := retry.Sleep(ctx, f.cfg.Backoff.Delay(attempt, 0, f.rng)); err != nil {
			return ctx.Err()
		}
	}
}

// Status returns the follower's current replication state.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Status{
		Connected:    f.connected,
		Bootstrapped: f.bootstrapped,
		Applied:      f.applied,
		Primary:      f.primary,
		LagRecords:   lagRecords(f.applied, f.primary),
		LastContact:  f.lastContact,
		Reconnects:   f.reconnects,
		Snapshots:    f.snapshots,
		Records:      f.records,
		Bytes:        f.bytes,
	}
}

// lagRecords counts records between applied and the primary's
// advertised position. Across a generation boundary the exact count is
// unknowable from positions alone; the primary-side sequence is a
// lower bound, and +1 keeps a pending rotation from reading as "caught
// up".
func lagRecords(applied, primary Position) uint64 {
	switch {
	case primary.Gen == applied.Gen:
		if primary.Seq > applied.Seq {
			return primary.Seq - applied.Seq
		}
		return 0
	case primary.Gen > applied.Gen:
		return primary.Seq + 1
	}
	return 0
}

// countingReader counts stream bytes into the follower's tally.
type countingReader struct {
	r io.Reader
	f *Follower
}

func (c countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.f.mu.Lock()
		c.f.bytes += uint64(n)
		c.f.mu.Unlock()
	}
	return n, err
}

// streamOnce runs one replication stream to completion (always an
// error — streams only end by breaking). progressed reports whether
// any frame was processed, which resets the reconnect backoff.
func (f *Follower) streamOnce(ctx context.Context) (progressed bool, err error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	target := strings.TrimSuffix(f.cfg.Primary, "/") + "/v1/replicate?index=" + url.QueryEscape(f.cfg.Index)
	f.mu.Lock()
	force := f.forceBootstrap
	f.mu.Unlock()
	pos, booted := f.cfg.Target.Position()
	if booted && !force {
		target += fmt.Sprintf("&gen=%d&seq=%d", pos.Gen, pos.Seq)
	}
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, target, nil)
	if err != nil {
		return false, err
	}
	// Progress watchdog: a stream that stops delivering frames (stalled
	// link, silent primary) is cancelled, which unblocks the pending
	// read. Armed before the request so a primary that accepts the
	// connection but never answers — a stall inside the response header
	// — trips it too. The primary heartbeats well inside StallTimeout,
	// so an idle-but-healthy stream never trips it.
	dog := time.AfterFunc(f.cfg.StallTimeout, cancel)
	defer dog.Stop()

	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	dog.Reset(f.cfg.StallTimeout)
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return false, fmt.Errorf("repl: primary returned HTTP %d", resp.StatusCode)
	}

	fr := NewFrameReader(countingReader{r: resp.Body, f: f})
	read := func() (FrameType, []byte, error) {
		typ, p, err := fr.ReadFrame()
		if err == nil {
			dog.Reset(f.cfg.StallTimeout)
			f.mu.Lock()
			f.lastContact = time.Now()
			f.mu.Unlock()
		}
		return typ, p, err
	}

	typ, payload, err := read()
	if err != nil {
		return false, err
	}
	if typ != FrameHello {
		return false, fmt.Errorf("repl: stream opened with %s, want hello", typ)
	}
	hello, err := DecodeHello(payload)
	if err != nil {
		return false, err
	}
	start := Position{Gen: hello.Gen, Seq: hello.Seq}
	if hello.Bootstrap {
		snap := &snapshotReader{read: read, fr: fr, remaining: hello.SnapSize}
		if err := f.cfg.Target.Bootstrap(start, snap, int64(hello.SnapSize)); err != nil {
			return false, fmt.Errorf("repl: bootstrap: %w", err)
		}
		if snap.remaining > 0 || len(snap.chunk) > 0 {
			return false, fmt.Errorf("repl: bootstrap left %d snapshot bytes unread", snap.remaining+uint64(len(snap.chunk)))
		}
		typ, _, err := read()
		if err != nil {
			return false, err
		}
		if typ != FrameSnapEnd {
			return false, fmt.Errorf("repl: snapshot followed by %s, want snapEnd", typ)
		}
		f.mu.Lock()
		f.snapshots++
		f.forceBootstrap = false
		f.bootstrapped = true
		f.mu.Unlock()
	} else if start != pos {
		return false, fmt.Errorf("repl: primary resumed at %v, requested %v", start, pos)
	}
	f.mu.Lock()
	f.connected = true
	f.applied = start
	f.primary = start
	f.mu.Unlock()
	progressed = true

	for {
		typ, payload, err := read()
		if err != nil {
			return progressed, err
		}
		switch typ {
		case FrameRecord:
			gen, seq, wp, err := DecodeRecord(payload)
			if err != nil {
				return progressed, err
			}
			rec, ok := wal.UnmarshalRecord(wp)
			if !ok {
				return progressed, fmt.Errorf("repl: undecodable WAL payload at %d/%d", gen, seq)
			}
			at := Position{Gen: gen, Seq: seq}
			if err := f.cfg.Target.Apply(at, rec); err != nil {
				if errors.Is(err, ErrOutOfSync) {
					f.mu.Lock()
					f.forceBootstrap = true
					f.mu.Unlock()
				}
				return progressed, fmt.Errorf("repl: apply %v: %w", at, err)
			}
			f.mu.Lock()
			f.applied = at
			f.primary = at
			f.records++
			f.mu.Unlock()
		case FrameRotate:
			gen, _, err := DecodePosition(payload)
			if err != nil {
				return progressed, err
			}
			if err := f.cfg.Target.Rotate(gen); err != nil {
				if errors.Is(err, ErrOutOfSync) {
					f.mu.Lock()
					f.forceBootstrap = true
					f.mu.Unlock()
				}
				return progressed, fmt.Errorf("repl: rotate to gen %d: %w", gen, err)
			}
			f.mu.Lock()
			f.applied = Position{Gen: gen}
			if f.primary.Gen < gen {
				f.primary = Position{Gen: gen}
			}
			f.mu.Unlock()
		case FrameHeartbeat:
			gen, seq, err := DecodePosition(payload)
			if err != nil {
				return progressed, err
			}
			f.mu.Lock()
			f.primary = Position{Gen: gen, Seq: seq}
			f.mu.Unlock()
		default:
			return progressed, fmt.Errorf("repl: unexpected %s frame in record tail", typ)
		}
	}
}

// snapshotReader presents the snapChunk frames of a bootstrap as one
// io.Reader of exactly the advertised snapshot size.
type snapshotReader struct {
	read      func() (FrameType, []byte, error)
	fr        *FrameReader
	chunk     []byte // unconsumed tail of the current frame's payload
	remaining uint64 // snapshot bytes not yet pulled from the stream
}

func (s *snapshotReader) Read(p []byte) (int, error) {
	for len(s.chunk) == 0 {
		if s.remaining == 0 {
			return 0, io.EOF
		}
		typ, payload, err := s.read()
		if err != nil {
			return 0, err
		}
		if typ != FrameSnapChunk {
			return 0, fmt.Errorf("repl: %s frame inside snapshot transfer", typ)
		}
		if len(payload) == 0 || uint64(len(payload)) > s.remaining {
			return 0, fmt.Errorf("repl: snapshot chunk of %d bytes with %d remaining", len(payload), s.remaining)
		}
		s.remaining -= uint64(len(payload))
		// The payload buffer is reused by the next ReadFrame, but no
		// frame is read before this chunk is fully consumed.
		s.chunk = payload
	}
	n := copy(p, s.chunk)
	s.chunk = s.chunk[n:]
	return n, nil
}
