package watch

import (
	"math/rand"
	"testing"
	"time"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/index"
	"mbrtopo/internal/mbr"
	"mbrtopo/internal/topo"
)

// newTestTable builds a table over a live R-tree, publishing through
// the same lock discipline the server uses (the test is
// single-threaded, so plain calls suffice).
func newTestTable(t *testing.T, idx index.Index) *Table {
	t.Helper()
	subIdx, err := index.NewWithPageSize(index.KindRTree, index.PaperPageSize)
	if err != nil {
		t.Fatal(err)
	}
	all := func(geom.Rect) bool { return true }
	scan := func(emit func(geom.Rect, uint64) bool) error {
		return idx.Search(all, all, emit)
	}
	return NewTable(scan, subIdx, nil)
}

func mustInsert(t *testing.T, idx index.Index, tab *Table, r geom.Rect, oid uint64) {
	t.Helper()
	if err := idx.Insert(r, oid); err != nil {
		t.Fatal(err)
	}
	tab.Publish(Mutation{Op: OpInsert, OID: oid, Rect: r})
}

func mustDelete(t *testing.T, idx index.Index, tab *Table, r geom.Rect, oid uint64) {
	t.Helper()
	if err := idx.Delete(r, oid); err != nil {
		t.Fatal(err)
	}
	tab.Publish(Mutation{Op: OpDelete, OID: oid, Rect: r})
}

func drain(sub *Subscription) []Event {
	var out []Event
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return out
			}
			out = append(out, ev)
		default:
			return out
		}
	}
}

// TestReach2Symmetric: the bounded-step relation must be symmetric —
// nearConfigs' soundness argument depends on it.
func TestReach2Symmetric(t *testing.T) {
	for i := 0; i < mbr.NumConfigs; i++ {
		a := mbr.ConfigFromIndex(i)
		for j := 0; j < mbr.NumConfigs; j++ {
			b := mbr.ConfigFromIndex(j)
			if reach2[i].Has(b) != reach2[j].Has(a) {
				t.Fatalf("reach2 asymmetric: %v→%v=%v but %v→%v=%v",
					a, b, reach2[i].Has(b), b, a, reach2[j].Has(a))
			}
		}
	}
}

// TestSkipFilterSound proves, by exhaustive enumeration over all
// 169×169 configuration transitions and every relation set a
// subscription can hold, that a skipped (old, new) pair has no
// membership on either side: skipping can never lose an event.
func TestSkipFilterSound(t *testing.T) {
	var sets []topo.Set
	for _, r := range topo.All() {
		sets = append(sets, topo.Set(0).Add(r))
	}
	sets = append(sets, topo.In, topo.NotDisjoint,
		topo.Set(0).Add(topo.Covers).Add(topo.CoveredBy))
	for _, rels := range sets {
		cfgs := mbr.CandidatesSet(rels)
		near := nearConfigs(cfgs)
		if !cfgs.SubsetOf(near) {
			t.Fatalf("%v: admissible set not within its expansion", rels)
		}
		for i := 0; i < mbr.NumConfigs; i++ {
			old := mbr.ConfigFromIndex(i)
			if near.Has(old) {
				continue
			}
			// Delete-only skip: the old configuration itself must be
			// inadmissible.
			if cfgs.Has(old) {
				t.Fatalf("%v: skip unsound for removal of %v", rels, old)
			}
			// Move skip: every bounded-step successor must be
			// inadmissible too.
			for _, next := range reach2[i].Configs() {
				if cfgs.Has(next) {
					t.Fatalf("%v: skip unsound for %v→%v", rels, old, next)
				}
			}
		}
	}
}

// TestSkipFilterSkips: a small sliding move far from a contains
// subscription's admissible configurations must actually be skipped
// (the counter the acceptance criteria require to move).
func TestSkipFilterSkips(t *testing.T) {
	idx, err := index.NewWithPageSize(index.KindRTree, index.PaperPageSize)
	if err != nil {
		t.Fatal(err)
	}
	tab := newTestTable(t, idx)
	// Watch for objects strictly containing the reference.
	sub, err := tab.Subscribe(geom.R(40, 40, 60, 60), topo.Set(0).Add(topo.Contains), 0)
	if err != nil {
		t.Fatal(err)
	}
	// An object overlapping only the reference's left edge region,
	// sliding slightly: its configuration stays far from contains.
	r0 := geom.R(35, 45, 45, 55)
	mustInsert(t, idx, tab, r0, 1)
	r1 := geom.R(36, 45, 46, 55)
	mustDelete(t, idx, tab, r0, 1)
	mustInsert(t, idx, tab, r1, 1)
	tab.Sync()
	c := tab.Counters()
	if c.Skipped == 0 {
		t.Fatalf("expected skipped > 0, got %+v", c)
	}
	if evs := drain(sub); len(evs) != 0 {
		t.Fatalf("unexpected events %v", evs)
	}
	tab.Unsubscribe(sub)
}

// TestEnterChangeExit walks one object through a subscription's
// lifecycle and checks the event sequence and relations.
func TestEnterChangeExit(t *testing.T) {
	idx, err := index.NewWithPageSize(index.KindRTree, index.PaperPageSize)
	if err != nil {
		t.Fatal(err)
	}
	tab := newTestTable(t, idx)
	ref := geom.R(0, 0, 100, 100)
	sub, err := tab.Subscribe(ref, topo.NotDisjoint, 0)
	if err != nil {
		t.Fatal(err)
	}

	move := func(from, to geom.Rect, oid uint64) {
		if err := idx.Update(from, to, oid); err != nil {
			t.Fatal(err)
		}
		tab.Publish(
			Mutation{Op: OpDelete, OID: oid, Rect: from},
			Mutation{Op: OpInsert, OID: oid, Rect: to},
		)
	}

	far := geom.R(200, 200, 210, 210)
	inside := geom.R(10, 10, 20, 20)
	overlapping := geom.R(90, 90, 110, 110)

	mustInsert(t, idx, tab, far, 7) // disjoint: no event
	move(far, inside, 7)            // enter (inside)
	move(inside, overlapping, 7)    // change (inside → overlap)
	mustDelete(t, idx, tab, overlapping, 7)
	tab.Sync()

	evs := drain(sub)
	if len(evs) != 3 {
		t.Fatalf("expected 3 events, got %v", evs)
	}
	if evs[0].Type != Enter || evs[0].New != topo.Inside || evs[0].OID != 7 {
		t.Fatalf("bad enter event %+v", evs[0])
	}
	if evs[1].Type != Change || evs[1].Old != topo.Inside || evs[1].New != topo.Overlap {
		t.Fatalf("bad change event %+v", evs[1])
	}
	if evs[2].Type != Exit || !evs[2].HasOld || evs[2].HasNew {
		t.Fatalf("bad exit event %+v", evs[2])
	}
	if !(evs[0].Gen < evs[1].Gen && evs[1].Gen < evs[2].Gen) {
		t.Fatalf("generations not increasing: %v", evs)
	}
	tab.Unsubscribe(sub)
	if _, ok := <-sub.Events(); ok {
		t.Fatal("channel still open after unsubscribe")
	}
	if sub.EndReason() != "unsubscribed" {
		t.Fatalf("end reason %q", sub.EndReason())
	}
}

// TestDisjointSubscription: relation sets admitting disjoint bypass
// the reference R-tree (every mutation is a candidate) and see objects
// far away from the reference.
func TestDisjointSubscription(t *testing.T) {
	idx, err := index.NewWithPageSize(index.KindRTree, index.PaperPageSize)
	if err != nil {
		t.Fatal(err)
	}
	tab := newTestTable(t, idx)
	sub, err := tab.Subscribe(geom.R(0, 0, 10, 10), topo.Set(0).Add(topo.Disjoint), 0)
	if err != nil {
		t.Fatal(err)
	}
	mustInsert(t, idx, tab, geom.R(500, 500, 510, 510), 1) // enter (disjoint)
	mustDelete(t, idx, tab, geom.R(500, 500, 510, 510), 1) // exit
	tab.Sync()
	evs := drain(sub)
	if len(evs) != 2 || evs[0].Type != Enter || evs[0].New != topo.Disjoint || evs[1].Type != Exit {
		t.Fatalf("unexpected events %v", evs)
	}
	tab.Unsubscribe(sub)
}

// TestSeededShadow: objects present before the subscription produce no
// spurious events, and their transitions are diffed against the
// seeded state.
func TestSeededShadow(t *testing.T) {
	idx, err := index.NewWithPageSize(index.KindRTree, index.PaperPageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert(geom.R(10, 10, 20, 20), 1); err != nil {
		t.Fatal(err)
	}
	tab := newTestTable(t, idx)
	sub, err := tab.Subscribe(geom.R(0, 0, 100, 100), topo.NotDisjoint, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustDelete(t, idx, tab, geom.R(10, 10, 20, 20), 1)
	tab.Sync()
	evs := drain(sub)
	if len(evs) != 1 || evs[0].Type != Exit || !evs[0].HasOld || evs[0].Old != topo.Inside {
		t.Fatalf("expected one exit diffed against the seeded shadow, got %v", evs)
	}
	tab.Unsubscribe(sub)
	if tab.Active() {
		t.Fatal("table still active after last unsubscribe")
	}
}

// TestLaggingSubscriberTerminated: a full event buffer ends the
// subscription instead of blocking the notifier.
func TestLaggingSubscriberTerminated(t *testing.T) {
	idx, err := index.NewWithPageSize(index.KindRTree, index.PaperPageSize)
	if err != nil {
		t.Fatal(err)
	}
	tab := newTestTable(t, idx)
	sub, err := tab.Subscribe(geom.R(0, 0, 100, 100), topo.NotDisjoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	for oid := uint64(1); oid <= 3; oid++ {
		mustInsert(t, idx, tab, geom.R(10, 10, 20, 20), oid)
	}
	tab.Sync()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-sub.Events():
			if !ok {
				if sub.EndReason() == "" {
					t.Fatal("terminated without a reason")
				}
				if tab.Counters().Dropped == 0 {
					t.Fatal("dropped counter did not move")
				}
				return
			}
		case <-deadline:
			t.Fatal("subscription not terminated")
		}
	}
}

// TestClose ends all subscriptions with the close reason and rejects
// new ones.
func TestClose(t *testing.T) {
	idx, err := index.NewWithPageSize(index.KindRTree, index.PaperPageSize)
	if err != nil {
		t.Fatal(err)
	}
	tab := newTestTable(t, idx)
	sub, err := tab.Subscribe(geom.R(0, 0, 1, 1), topo.NotDisjoint, 0)
	if err != nil {
		t.Fatal(err)
	}
	tab.Close("drain")
	if _, ok := <-sub.Events(); ok {
		t.Fatal("channel open after close")
	}
	if sub.EndReason() != "drain" {
		t.Fatalf("end reason %q", sub.EndReason())
	}
	if _, err := tab.Subscribe(geom.R(0, 0, 1, 1), topo.NotDisjoint, 0); err != ErrClosed {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
	tab.Close("again") // idempotent
}

// TestRandomTraceMatchesBruteForce drives a random single-rectangle
// mutation trace through the table and checks that replaying the
// filtered incremental event stream reconstructs exactly the
// membership a from-scratch evaluation of the final state reports.
func TestRandomTraceMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	idx, err := index.NewWithPageSize(index.KindRTree, index.PaperPageSize)
	if err != nil {
		t.Fatal(err)
	}
	tab := newTestTable(t, idx)

	type spec struct {
		ref  geom.Rect
		rels topo.Set
	}
	specs := []spec{
		{geom.R(100, 100, 300, 300), topo.NotDisjoint},
		{geom.R(200, 200, 260, 260), topo.Set(0).Add(topo.Contains)},
		{geom.R(50, 50, 600, 600), topo.In},
		{geom.R(300, 100, 500, 250), topo.Set(0).Add(topo.Meet)},
		{geom.R(0, 0, 80, 80), topo.Set(0).Add(topo.Disjoint)},
		{geom.R(120, 300, 180, 420), topo.Set(0).Add(topo.Equal).Add(topo.Overlap)},
	}
	subs := make([]*Subscription, len(specs))
	for i, sp := range specs {
		if subs[i], err = tab.Subscribe(sp.ref, sp.rels, 4096); err != nil {
			t.Fatal(err)
		}
	}

	member := func(sp spec, r geom.Rect) bool {
		return mbr.CandidatesSet(sp.rels).Has(mbr.ConfigOf(r, sp.ref))
	}

	live := make(map[uint64]geom.Rect)
	members := make([]map[uint64]bool, len(specs))
	for i := range members {
		members[i] = make(map[uint64]bool)
	}
	nextOID := uint64(1)
	randRect := func() geom.Rect {
		if rng.Intn(4) == 0 {
			// Park some objects with their x-extent strictly inside
			// the contains subscription's reference: those
			// configurations sit outside its neighbourhood expansion,
			// so their deletions and small moves exercise the skip.
			x := 205 + rng.Float64()*20
			y := rng.Float64() * 600
			return geom.R(x, y, x+5+rng.Float64()*25, y+5+rng.Float64()*80)
		}
		x, y := rng.Float64()*600, rng.Float64()*600
		return geom.R(x, y, x+5+rng.Float64()*80, y+5+rng.Float64()*80)
	}

	for step := 0; step < 500; step++ {
		switch op := rng.Intn(10); {
		case op < 5 && len(live) > 0: // small move
			var oid uint64
			for oid = range live {
				break
			}
			old := live[oid]
			dx, dy := (rng.Float64()-0.5)*10, (rng.Float64()-0.5)*10
			next := geom.R(old.Min.X+dx, old.Min.Y+dy, old.Max.X+dx, old.Max.Y+dy)
			if err := idx.Update(old, next, oid); err != nil {
				t.Fatal(err)
			}
			tab.Publish(
				Mutation{Op: OpDelete, OID: oid, Rect: old},
				Mutation{Op: OpInsert, OID: oid, Rect: next},
			)
			live[oid] = next
		case op < 8: // insert
			r := randRect()
			mustInsert(t, idx, tab, r, nextOID)
			live[nextOID] = r
			nextOID++
		default: // delete
			if len(live) == 0 {
				continue
			}
			var oid uint64
			for oid = range live {
				break
			}
			mustDelete(t, idx, tab, live[oid], oid)
			delete(live, oid)
		}
	}
	tab.Sync()

	c := tab.Counters()
	if c.Evaluated == 0 || c.Skipped == 0 || c.Pruned == 0 {
		t.Fatalf("expected all filter layers to fire: %+v", c)
	}

	for i, sp := range specs {
		for _, ev := range drain(subs[i]) {
			switch ev.Type {
			case Enter:
				members[i][ev.OID] = true
			case Exit:
				delete(members[i], ev.OID)
			}
		}
		want := make(map[uint64]bool)
		for oid, r := range live {
			if member(sp, r) {
				want[oid] = true
			}
		}
		if len(want) != len(members[i]) {
			t.Fatalf("sub %d (%v): reconstructed %d members, want %d", i, sp.rels, len(members[i]), len(want))
		}
		for oid := range want {
			if !members[i][oid] {
				t.Fatalf("sub %d (%v): missing member %d", i, sp.rels, oid)
			}
		}
	}
}
