package watch

import (
	"mbrtopo/internal/interval"
	"mbrtopo/internal/mbr"
)

// The skip filter of the notifier is built on the paper's Section 6
// conceptual neighbourhood graph (Figure 14): when an object's MBR
// changes by a bounded amount, its interval relation to a reference
// can only move along neighbourhood edges, so a subscription whose
// admissible configurations are far from the object's old
// configuration cannot gain or lose that object.
//
// The derived GrowPrimaryNeighbours/GrowReferenceNeighbours edges are
// directed (growth only), but a moving object traverses them in both
// directions — a translation grows one side of its interval while
// shrinking the other — so the sound per-axis bound is the undirected
// closure of both edge sets.

// axisSteps2[r-1] is the set of interval relations reachable from r in
// at most two moves along the symmetrised neighbourhood graph.
var axisSteps2 [interval.NumRelations]interval.Set

// reach2 maps a configuration index to the set of configurations
// reachable when each axis relation takes at most two neighbourhood
// moves — the per-axis product of axisSteps2. The relation "b is in
// reach2 of a" is symmetric, which nearConfigs relies on.
var reach2 [mbr.NumConfigs]mbr.ConfigSet

// touchingConfigs holds the configurations whose projections share at
// least one point on both axes — exactly the configurations that can
// realise a relation other than disjoint. A subscription whose
// admissible set stays inside it is only ever affected by objects
// touching its reference rectangle, which is what lets the R-tree over
// subscription references prune candidates.
var touchingConfigs mbr.ConfigSet

func init() {
	var adj [interval.NumRelations]interval.Set
	for _, r := range interval.All() {
		out := interval.GrowPrimaryNeighbours(r).Union(interval.GrowReferenceNeighbours(r))
		adj[r-1] = adj[r-1].Union(out)
		for _, n := range out.Relations() {
			adj[n-1] = adj[n-1].Add(r)
		}
	}
	for _, r := range interval.All() {
		s := interval.NewSet(r).Union(adj[r-1])
		for _, n := range adj[r-1].Relations() {
			s = s.Union(adj[n-1])
		}
		axisSteps2[r-1] = s
	}
	for i := 0; i < mbr.NumConfigs; i++ {
		c := mbr.ConfigFromIndex(i)
		reach2[i] = mbr.ProductSet(axisSteps2[c.X-1], axisSteps2[c.Y-1])
	}
	var touching interval.Set
	for _, r := range interval.All() {
		if r.SharesPoints() {
			touching = touching.Add(r)
		}
	}
	touchingConfigs = mbr.ProductSet(touching, touching)
}

// nearConfigs expands an admissible configuration set by up to two
// symmetric neighbourhood moves per axis: the union of reach2 over the
// set's members. By the symmetry of reach2, a configuration outside
// the expansion whose move stays within reach2 lands outside the
// admissible set too — the soundness of the notifier's skip test.
func nearConfigs(s mbr.ConfigSet) mbr.ConfigSet {
	out := s
	for _, c := range s.Configs() {
		out = out.Union(reach2[c.Index()])
	}
	return out
}
