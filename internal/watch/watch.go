// Package watch implements live geofence subscriptions: continuous
// topological queries (a reference rectangle plus a relation set, the
// same shape as a window query) that are notified when index mutations
// change their answer.
//
// Subscriptions live in a Table attached to one served index. The
// write path publishes every applied commit batch; a single notifier
// goroutine evaluates one pass per batch and fans events out to the
// subscribers' buffered channels. Three layers keep a pass cheap:
//
//  1. An R-tree over the subscription reference rectangles reduces the
//     touched object's rectangles to the subscriptions they touch
//     (subscriptions whose relation set admits disjoint see every
//     mutation — a gap configuration matches objects anywhere).
//  2. The conceptual neighbourhood graph (paper Section 6) skips
//     candidate subscriptions whose relation set is unreachable from
//     the object's previous configuration within the move's bound; new
//     and removed objects fall back to full evaluation.
//  3. Survivors re-run only the filter step — a configuration test per
//     rectangle — against the subscription's admissible set.
//
// Delivery is at-least-once per generation: a subscriber that attaches
// while a commit is still queued may receive events its own baseline
// query already reflects. Events for one object are always delivered
// in apply order, so replaying enter/exit as set operations converges
// to the true membership.
package watch

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/mbr"
	"mbrtopo/internal/topo"
)

// DefaultBuffer is the per-subscription event buffer when the
// subscriber does not choose one.
const DefaultBuffer = 256

// ErrClosed is returned by Subscribe after the table has been closed.
var ErrClosed = errors.New("watch: table closed")

// Op is a mutation kind.
type Op uint8

// The mutation kinds the write path publishes.
const (
	OpInsert Op = iota + 1
	OpDelete
)

// Mutation is one applied index change. The write path publishes them
// in apply order, batched per commit.
type Mutation struct {
	Op   Op
	OID  uint64
	Rect geom.Rect
}

// EventType classifies a notification.
type EventType uint8

// The event types.
const (
	// Enter: the object newly satisfies the subscription.
	Enter EventType = iota + 1
	// Exit: the object no longer satisfies the subscription.
	Exit
	// Change: the object still satisfies it under a different
	// MBR-level relation.
	Change
)

func (t EventType) String() string {
	switch t {
	case Enter:
		return "enter"
	case Exit:
		return "exit"
	case Change:
		return "change"
	}
	return "unknown"
}

// Event is one subscription notification.
type Event struct {
	Type EventType
	OID  uint64
	// Rect is the object's rectangle after the commit (its last known
	// rectangle for deletions).
	Rect geom.Rect
	// Gen numbers the commit batch that produced the event; all events
	// of one batch share it.
	Gen uint64
	// Old and New are the MBR-level topological relations of the object
	// to the reference before and after the batch; HasOld/HasNew report
	// whether the object existed on that side.
	Old, New       topo.Relation
	HasOld, HasNew bool
}

// Counters is a snapshot of the table's work accounting.
type Counters struct {
	// Subscriptions currently registered.
	Subscriptions int
	// Evaluated counts full (subscription, object) evaluations.
	Evaluated uint64
	// Skipped counts evaluations avoided by the neighbourhood-graph
	// reachability test.
	Skipped uint64
	// Pruned counts evaluations avoided by the subscription R-tree
	// (reference nowhere near the object).
	Pruned uint64
	// Events delivered to subscriber buffers.
	Events uint64
	// Dropped counts events lost when a lagging subscription was
	// terminated.
	Dropped uint64
	// Batches evaluated.
	Batches uint64
}

// Subscription is one registered continuous query.
type Subscription struct {
	id   uint64
	ref  geom.Rect
	rels topo.Set
	// cfgs is the admissible configuration set (the Table 1 candidates
	// of the relation set): membership on the wire is exactly the
	// filter step of a window query with the same request.
	cfgs mbr.ConfigSet
	// near is cfgs expanded two neighbourhood moves per axis; the
	// notifier's skip test checks the old configuration against it.
	near mbr.ConfigSet
	// gap marks subscriptions whose admissible set leaves the touching
	// configurations — their relation set admits disjoint, so every
	// mutation is a candidate and the reference R-tree cannot help.
	gap      bool
	startGen uint64

	ch chan Event

	mu     sync.Mutex
	reason string
}

// ID identifies the subscription within its table.
func (s *Subscription) ID() uint64 { return s.id }

// Ref returns the reference rectangle.
func (s *Subscription) Ref() geom.Rect { return s.ref }

// Relations returns the watched relation set.
func (s *Subscription) Relations() topo.Set { return s.rels }

// StartGen is the last generation already reflected in the index when
// the subscription attached; events carry strictly larger generations.
func (s *Subscription) StartGen() uint64 { return s.startGen }

// Events returns the notification channel. It is closed when the
// subscription ends — by Unsubscribe, by lagging, or by the table
// closing — after which EndReason reports why.
func (s *Subscription) Events() <-chan Event { return s.ch }

// EndReason reports why the subscription ended ("" while live).
func (s *Subscription) EndReason() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reason
}

// classify reports whether any of the object's rectangles is in the
// admissible configuration set — the same test as the window-query
// filter step — plus the MBR-level relation to report: the first
// admissible rectangle's when a member, the first rectangle's
// otherwise. ok is false when the object has no rectangles.
func (s *Subscription) classify(rects []geom.Rect) (member bool, rel topo.Relation, ok bool) {
	if len(rects) == 0 {
		return false, 0, false
	}
	for _, r := range rects {
		c := mbr.ConfigOf(r, s.ref)
		if s.cfgs.Has(c) {
			return true, c.Topo(), true
		}
	}
	return false, mbr.ConfigOf(rects[0], s.ref).Topo(), true
}

// eventFor evaluates one object's transition against the subscription.
func (s *Subscription) eventFor(oid uint64, before, after []geom.Rect) (Event, bool) {
	mOld, relOld, hasOld := s.classify(before)
	mNew, relNew, hasNew := s.classify(after)
	ev := Event{OID: oid, Old: relOld, New: relNew, HasOld: hasOld, HasNew: hasNew}
	if len(after) > 0 {
		ev.Rect = after[0]
	} else if len(before) > 0 {
		ev.Rect = before[0]
	}
	switch {
	case mOld && mNew:
		if relOld == relNew {
			return Event{}, false
		}
		ev.Type = Change
	case mOld:
		ev.Type = Exit
	case mNew:
		ev.Type = Enter
	default:
		return Event{}, false
	}
	return ev, true
}

// SubIndex is the R-tree interface the table needs over subscription
// reference rectangles (satisfied by the index package's trees).
type SubIndex interface {
	Insert(r geom.Rect, oid uint64) error
	Delete(r geom.Rect, oid uint64) error
	Search(nodePred, leafPred func(geom.Rect) bool, emit func(geom.Rect, uint64) bool) error
}

// Table holds the subscriptions of one index and mirrors its contents
// (the shadow) so each commit batch can be diffed against the previous
// state. The shadow exists only while subscriptions do: the first
// Subscribe seeds it from a full index scan, the last departure drops
// it, and the write path's Publish is a single atomic load while the
// table is inactive.
type Table struct {
	scan    func(emit func(geom.Rect, uint64) bool) error
	observe func(time.Duration)

	active atomic.Bool

	evaluated, skipped, pruned atomic.Uint64
	events, dropped, batches   atomic.Uint64

	mu      sync.Mutex
	cond    *sync.Cond
	closed  bool
	started bool
	nextID  uint64
	gen     uint64 // batches published
	doneGen uint64 // batches evaluated and fanned out
	subs    map[uint64]*Subscription
	gapSubs map[uint64]*Subscription
	subIdx  SubIndex
	shadow  map[uint64][]geom.Rect
	queue   []commitBatch
}

type commitBatch struct {
	gen  uint64
	muts []Mutation
	at   time.Time
}

// NewTable creates an empty subscription table. scan must stream the
// index's current contents (duplicate (rect, oid) emissions, as from
// an R+-tree's duplicated leaf entries, are deduplicated). observe,
// when non-nil, receives each batch's commit-to-notification latency.
// subIdx indexes subscription references; it must be empty.
func NewTable(scan func(emit func(geom.Rect, uint64) bool) error, subIdx SubIndex, observe func(time.Duration)) *Table {
	t := &Table{
		scan:    scan,
		observe: observe,
		subs:    make(map[uint64]*Subscription),
		gapSubs: make(map[uint64]*Subscription),
		subIdx:  subIdx,
	}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// Active reports whether the table has subscribers — the write path's
// cheap pre-check before building a Publish batch.
func (t *Table) Active() bool { return t.active.Load() }

// Counters snapshots the work accounting.
func (t *Table) Counters() Counters {
	t.mu.Lock()
	n := len(t.subs)
	t.mu.Unlock()
	return Counters{
		Subscriptions: n,
		Evaluated:     t.evaluated.Load(),
		Skipped:       t.skipped.Load(),
		Pruned:        t.pruned.Load(),
		Events:        t.events.Load(),
		Dropped:       t.dropped.Load(),
		Batches:       t.batches.Load(),
	}
}

// Subscribe registers a continuous query. The caller must hold the
// same lock the index's writers hold across apply+Publish: the first
// subscription seeds the shadow from the index scan, and only that
// lock guarantees no commit falls between the scan and the queue.
// buffer sizes the event channel (<=0 → DefaultBuffer); a subscriber
// that falls that far behind is terminated with reason "lagged".
func (t *Table) Subscribe(ref geom.Rect, rels topo.Set, buffer int) (*Subscription, error) {
	if buffer <= 0 {
		buffer = DefaultBuffer
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if t.shadow == nil {
		type entry struct {
			oid uint64
			r   geom.Rect
		}
		shadow := make(map[uint64][]geom.Rect)
		seen := make(map[entry]bool)
		err := t.scan(func(r geom.Rect, oid uint64) bool {
			e := entry{oid, r}
			if seen[e] {
				return true
			}
			seen[e] = true
			shadow[oid] = append(shadow[oid], r)
			return true
		})
		if err != nil {
			return nil, err
		}
		t.shadow = shadow
		t.active.Store(true)
	}
	if !t.started {
		t.started = true
		go t.notifier()
	}
	t.nextID++
	cfgs := mbr.CandidatesSet(rels)
	sub := &Subscription{
		id:       t.nextID,
		ref:      ref,
		rels:     rels,
		cfgs:     cfgs,
		near:     nearConfigs(cfgs),
		gap:      !cfgs.SubsetOf(touchingConfigs),
		startGen: t.gen,
		ch:       make(chan Event, buffer),
	}
	if sub.gap {
		t.gapSubs[sub.id] = sub
	} else if err := t.subIdx.Insert(ref, sub.id); err != nil {
		return nil, err
	}
	t.subs[sub.id] = sub
	return sub, nil
}

// Unsubscribe ends a subscription (no-op when already ended).
func (t *Table) Unsubscribe(sub *Subscription) {
	t.mu.Lock()
	t.endLocked(sub, "unsubscribed")
	t.mu.Unlock()
}

// endLocked removes a subscription and closes its channel; the last
// departure deactivates the table so the write path stops paying for
// it. Caller holds t.mu.
func (t *Table) endLocked(sub *Subscription, reason string) {
	if _, ok := t.subs[sub.id]; !ok {
		return
	}
	delete(t.subs, sub.id)
	if sub.gap {
		delete(t.gapSubs, sub.id)
	} else {
		_ = t.subIdx.Delete(sub.ref, sub.id)
	}
	sub.mu.Lock()
	sub.reason = reason
	sub.mu.Unlock()
	close(sub.ch)
	if len(t.subs) == 0 && !t.closed {
		t.shadow = nil
		t.queue = nil
		t.doneGen = t.gen
		t.active.Store(false)
		t.cond.Broadcast()
	}
}

// Publish hands one applied commit batch to the notifier, taking
// ownership of muts. Callers invoke it under the lock that serialised
// the index mutation, so batch order matches apply order; it never
// blocks on delivery.
func (t *Table) Publish(muts ...Mutation) {
	if len(muts) == 0 || !t.active.Load() {
		return
	}
	t.mu.Lock()
	if t.shadow == nil {
		t.mu.Unlock()
		return
	}
	t.gen++
	t.queue = append(t.queue, commitBatch{gen: t.gen, muts: muts, at: time.Now()})
	t.cond.Signal()
	t.mu.Unlock()
}

// Sync blocks until every batch published before the call has been
// evaluated and its events buffered or dropped — a test, benchmark,
// and drain hook; the serving path never calls it.
func (t *Table) Sync() {
	t.mu.Lock()
	target := t.gen
	for t.doneGen < target && !t.closed {
		t.cond.Wait()
	}
	t.mu.Unlock()
}

// Close ends every subscription with the given reason (handlers
// surface it as the terminal stream line), discards pending batches,
// and rejects future subscribes. Callers that want queued events
// delivered first run Sync before Close. Safe to call repeatedly.
func (t *Table) Close(reason string) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	subs := make([]*Subscription, 0, len(t.subs))
	for _, sub := range t.subs {
		subs = append(subs, sub)
	}
	for _, sub := range subs {
		t.endLocked(sub, reason)
	}
	t.closed = true
	t.queue = nil
	t.active.Store(false)
	t.cond.Broadcast()
	t.mu.Unlock()
}

// notifier is the single evaluation goroutine: one pass per commit
// batch, in publish order. It runs under t.mu — evaluation is pure
// in-memory work, and holding the lock makes subscribe/unsubscribe
// atomic with respect to batch boundaries.
func (t *Table) notifier() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		for len(t.queue) == 0 && !t.closed {
			t.cond.Wait()
		}
		if len(t.queue) == 0 && t.closed {
			return
		}
		b := t.queue[0]
		t.queue = t.queue[1:]
		t.runBatchLocked(b)
		// endLocked may have fast-forwarded doneGen while discarding
		// the queue (last subscriber lagged out mid-batch); never move
		// it backwards.
		if b.gen > t.doneGen {
			t.doneGen = b.gen
		}
		t.batches.Add(1)
		if t.observe != nil {
			t.observe(time.Since(b.at))
		}
		t.cond.Broadcast()
	}
}

// delta is one object's coalesced transition within a commit batch.
type delta struct {
	oid           uint64
	before, after []geom.Rect
}

// runBatchLocked coalesces a batch per object, advances the shadow,
// and evaluates the touched objects against the candidate
// subscriptions. Caller holds t.mu.
func (t *Table) runBatchLocked(b commitBatch) {
	if t.shadow == nil || len(t.subs) == 0 {
		return
	}
	idxOf := make(map[uint64]int)
	var deltas []delta
	for _, m := range b.muts {
		if _, seen := idxOf[m.OID]; !seen {
			idxOf[m.OID] = len(deltas)
			deltas = append(deltas, delta{
				oid:    m.OID,
				before: append([]geom.Rect(nil), t.shadow[m.OID]...),
			})
		}
		switch m.Op {
		case OpInsert:
			t.shadow[m.OID] = append(t.shadow[m.OID], m.Rect)
		case OpDelete:
			rs := t.shadow[m.OID]
			for j, r := range rs {
				if r == m.Rect {
					t.shadow[m.OID] = append(rs[:j], rs[j+1:]...)
					break
				}
			}
			if len(t.shadow[m.OID]) == 0 {
				delete(t.shadow, m.OID)
			}
		}
	}
	for i := range deltas {
		deltas[i].after = append([]geom.Rect(nil), t.shadow[deltas[i].oid]...)
	}

	subCount := uint64(len(t.subs))
	pending := make(map[*Subscription][]Event)
	cands := make(map[uint64]*Subscription)
	for _, d := range deltas {
		// Candidates: subscriptions whose reference touches one of the
		// object's rectangles (closed intersection — boundary contact
		// can establish meet), plus every gap subscription.
		clear(cands)
		for id, sub := range t.gapSubs {
			cands[id] = sub
		}
		gather := func(r geom.Rect) {
			pred := func(nr geom.Rect) bool { return nr.Intersects(r) }
			_ = t.subIdx.Search(pred, pred, func(_ geom.Rect, id uint64) bool {
				if sub, ok := t.subs[id]; ok {
					cands[id] = sub
				}
				return true
			})
		}
		for _, r := range d.before {
			gather(r)
		}
		for _, r := range d.after {
			gather(r)
		}
		t.pruned.Add(subCount - uint64(len(cands)))
		for _, sub := range cands {
			// Neighbourhood skip: by reach2's symmetry, cOld outside
			// the subscription's expansion means no admissible
			// configuration is reachable from the old state within the
			// bound. A removal then cannot produce an event (the old
			// configuration itself is inadmissible), and neither can a
			// move whose new configuration stayed within the bound.
			// New objects (no previous state) and multi-rectangle
			// objects fall back to full evaluation.
			if len(d.before) == 1 {
				cOld := mbr.ConfigOf(d.before[0], sub.ref)
				if !sub.near.Has(cOld) &&
					(len(d.after) == 0 ||
						(len(d.after) == 1 && reach2[cOld.Index()].Has(mbr.ConfigOf(d.after[0], sub.ref)))) {
					t.skipped.Add(1)
					continue
				}
			}
			t.evaluated.Add(1)
			if ev, ok := sub.eventFor(d.oid, d.before, d.after); ok {
				pending[sub] = append(pending[sub], ev)
			}
		}
	}
	for sub, evs := range pending {
		t.deliverLocked(sub, evs, b.gen)
	}
}

// deliverLocked fans one subscription's batch events out without ever
// blocking: a full buffer terminates the subscription instead of
// stalling the notifier or queueing unboundedly. Caller holds t.mu.
func (t *Table) deliverLocked(sub *Subscription, evs []Event, gen uint64) {
	for i, ev := range evs {
		ev.Gen = gen
		select {
		case sub.ch <- ev:
			t.events.Add(1)
		default:
			t.dropped.Add(uint64(len(evs) - i))
			t.endLocked(sub, "lagged: event buffer full")
			return
		}
	}
}
