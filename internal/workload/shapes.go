// Package workload generates the synthetic datasets of the paper's
// Section 4 (uniformly random MBRs of bounded relative size, with
// matching search files) and, beyond the paper's own experiments,
// random contiguous region objects (simple polygons with crisp MBRs)
// used to exercise the refinement step and to property-test the
// MBR-level theory against exact geometry.
package workload

import (
	"math"
	"math/rand"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/topo"
)

// RandomStar returns a random star-shaped simple polygon with n
// vertices around center c with maximal radius rMax. Star-shaped
// polygons about their kernel are always simple.
func RandomStar(rng *rand.Rand, c geom.Point, rMax float64, n int) geom.Polygon {
	if n < 3 {
		n = 3
	}
	pg := make(geom.Polygon, n)
	for i := 0; i < n; i++ {
		ang := (float64(i) + 0.15 + 0.7*rng.Float64()) / float64(n) * 2 * math.Pi
		rad := rMax * (0.35 + 0.65*rng.Float64())
		pg[i] = geom.Point{X: c.X + rad*math.Cos(ang), Y: c.Y + rad*math.Sin(ang)}
	}
	return pg
}

// PolygonInRect returns a random simple polygon whose MBR is exactly r
// (crisp: contained in r and touching all four sides), by generating a
// star and rescaling it onto r. Axis-aligned affine maps preserve
// topological relations, simplicity and MBR crispness.
func PolygonInRect(rng *rand.Rand, r geom.Rect, n int) geom.Polygon {
	star := RandomStar(rng, geom.Point{}, 1, n)
	return FitToRect(star, r)
}

// FitToRect maps pg affinely (axis-aligned scale + translate) so its
// MBR becomes exactly r.
func FitToRect(pg geom.Polygon, r geom.Rect) geom.Polygon {
	b := pg.Bounds()
	sx := r.Width() / b.Width()
	sy := r.Height() / b.Height()
	out := make(geom.Polygon, len(pg))
	for i, p := range pg {
		out[i] = geom.Point{
			X: r.Min.X + (p.X-b.Min.X)*sx,
			Y: r.Min.Y + (p.Y-b.Min.Y)*sy,
		}
	}
	return out
}

// PairInRelation constructs a random pair of valid simple polygons
// (P, Q) with geom.Relate(P, Q) equal to want. The pairs vary in MBR
// configuration as much as each relation permits; rare relations
// (equal, meet, covers, covered_by) use dedicated templates under a
// random axis-aligned affine map, which preserves the relation.
func PairInRelation(rng *rand.Rand, want topo.Relation) (geom.Polygon, geom.Polygon) {
	for {
		p, q := pairCandidate(rng, want)
		if p.Validate() != nil || q.Validate() != nil {
			continue
		}
		if geom.Relate(p, q) == want {
			return p, q
		}
	}
}

// randomAffine applies a random axis-aligned affine map (positive
// scales, translation) to both polygons, preserving their relation.
func randomAffine(rng *rand.Rand, ps ...geom.Polygon) []geom.Polygon {
	sx := 0.25 + 3*rng.Float64()
	sy := 0.25 + 3*rng.Float64()
	dx := (rng.Float64() - 0.5) * 40
	dy := (rng.Float64() - 0.5) * 40
	out := make([]geom.Polygon, len(ps))
	for k, pg := range ps {
		m := make(geom.Polygon, len(pg))
		for i, p := range pg {
			m[i] = geom.Point{X: p.X*sx + dx, Y: p.Y*sy + dy}
		}
		out[k] = m
	}
	return out
}

func pairCandidate(rng *rand.Rand, want topo.Relation) (geom.Polygon, geom.Polygon) {
	switch want {
	case topo.Disjoint:
		return disjointTemplate(rng)
	case topo.Meet:
		return meetTemplate(rng)
	case topo.Equal:
		p := RandomStar(rng, geom.Point{X: 5, Y: 5}, 3, 4+rng.Intn(8))
		q := sameRegionVariant(rng, p)
		ps := randomAffine(rng, p, q)
		return ps[0], ps[1]
	case topo.Overlap:
		return overlapTemplate(rng)
	case topo.Contains:
		q, p := insideTemplate(rng)
		return p, q
	case topo.Inside:
		return insideTemplate(rng)
	case topo.Covers:
		q, p := coveredByTemplate(rng)
		return p, q
	case topo.CoveredBy:
		return coveredByTemplate(rng)
	}
	panic("workload.PairInRelation: invalid relation")
}

// sameRegionVariant returns a different vertex ring describing the
// same region: rotated start, optionally reversed, optionally with an
// edge split by its midpoint.
func sameRegionVariant(rng *rand.Rand, p geom.Polygon) geom.Polygon {
	q := p.Rotate(rng.Intn(len(p)))
	if rng.Intn(2) == 0 {
		q = q.Reverse()
	}
	if rng.Intn(2) == 0 {
		i := rng.Intn(len(q))
		mid := geom.Segment{A: q[i], B: q[(i+1)%len(q)]}.Midpoint()
		out := make(geom.Polygon, 0, len(q)+1)
		out = append(out, q[:i+1]...)
		out = append(out, mid)
		out = append(out, q[i+1:]...)
		q = out
	}
	return q
}

func disjointTemplate(rng *rand.Rand) (geom.Polygon, geom.Polygon) {
	switch rng.Intn(3) {
	case 0: // far apart: MBRs disjoint
		p := RandomStar(rng, geom.Point{X: 0, Y: 0}, 2, 4+rng.Intn(6))
		q := RandomStar(rng, geom.Point{X: 10 * (1 + rng.Float64()), Y: 10 * rng.Float64()}, 2, 4+rng.Intn(6))
		ps := randomAffine(rng, p, q)
		return ps[0], ps[1]
	case 1: // interleaved L-shapes: MBRs overlap, objects disjoint
		L1 := geom.Polygon{{X: 0, Y: 0}, {X: 6, Y: 0}, {X: 6, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 6}, {X: 0, Y: 6}}
		L2 := geom.Polygon{{X: 2, Y: 2}, {X: 7, Y: 2}, {X: 7, Y: 7}, {X: 6.5, Y: 7}, {X: 6.5, Y: 2.5}, {X: 2, Y: 2.5}}
		ps := randomAffine(rng, L1, L2)
		return ps[0], ps[1]
	default: // small object in the notch of a U: reference MBR contains primary MBR
		U := geom.Polygon{{X: 0, Y: 0}, {X: 6, Y: 0}, {X: 6, Y: 6}, {X: 4, Y: 6}, {X: 4, Y: 2}, {X: 2, Y: 2}, {X: 2, Y: 6}, {X: 0, Y: 6}}
		s := RandomStar(rng, geom.Point{X: 3, Y: 4.2}, 0.8, 4+rng.Intn(5))
		ps := randomAffine(rng, s, U)
		return ps[0], ps[1]
	}
}

func meetTemplate(rng *rand.Rand) (geom.Polygon, geom.Polygon) {
	switch rng.Intn(4) {
	case 0: // full shared edge
		a := geom.R(0, 0, 2+rng.Float64()*3, 2+rng.Float64()*3)
		b := geom.R(a.Max.X, 0, a.Max.X+1+rng.Float64()*3, 1+rng.Float64()*4)
		ps := randomAffine(rng, a.Polygon(), b.Polygon())
		return ps[0], ps[1]
	case 1: // corner point contact
		a := geom.R(0, 0, 2, 2)
		b := geom.R(2, 2, 4+rng.Float64(), 3+rng.Float64())
		ps := randomAffine(rng, a.Polygon(), b.Polygon())
		return ps[0], ps[1]
	case 2: // two triangles sharing the diagonal of a square: equal MBRs
		s := 2 + rng.Float64()*4
		t1 := geom.Polygon{{X: 0, Y: 0}, {X: s, Y: 0}, {X: s, Y: s}}
		t2 := geom.Polygon{{X: 0, Y: 0}, {X: s, Y: s}, {X: 0, Y: s}}
		ps := randomAffine(rng, t1, t2)
		return ps[0], ps[1]
	default: // touching regions whose MBRs cross (configuration R4_6):
		// a triangle below the diagonal of its box and a quadrilateral
		// above it, sharing part of the hypotenuse.
		p := geom.Polygon{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 0, Y: 2}}
		q := geom.Polygon{{X: 4, Y: 0}, {X: 4, Y: 3}, {X: 1, Y: 3}, {X: 1, Y: 1.5}}
		ps := randomAffine(rng, p, q)
		return ps[0], ps[1]
	}
}

func overlapTemplate(rng *rand.Rand) (geom.Polygon, geom.Polygon) {
	switch rng.Intn(3) {
	case 0: // two random stars with nearby centers
		p := RandomStar(rng, geom.Point{X: 5, Y: 5}, 2+2*rng.Float64(), 4+rng.Intn(7))
		q := RandomStar(rng, geom.Point{X: 5 + 2*(rng.Float64()-0.5), Y: 5 + 2*(rng.Float64()-0.5)}, 2+2*rng.Float64(), 4+rng.Intn(7))
		ps := randomAffine(rng, p, q)
		return ps[0], ps[1]
	case 1: // crossing bars: the refinement-free configuration R5_9
		h := geom.R(0, 2, 8, 3).Polygon()
		v := geom.R(3, 0, 4, 6).Polygon()
		ps := randomAffine(rng, h, v)
		return ps[0], ps[1]
	default: // classic staircase overlap of two squares
		a := geom.R(0, 0, 4, 4).Polygon()
		b := geom.R(2+rng.Float64(), 2+rng.Float64(), 7, 7).Polygon()
		ps := randomAffine(rng, a, b)
		return ps[0], ps[1]
	}
}

// insideTemplate returns (small, big) with small strictly inside big.
func insideTemplate(rng *rand.Rand) (geom.Polygon, geom.Polygon) {
	big := RandomStar(rng, geom.Point{X: 5, Y: 5}, 4, 5+rng.Intn(7))
	c, ok := big.InteriorPoint()
	if !ok {
		c = geom.Point{X: 5, Y: 5}
	}
	small := RandomStar(rng, c, 0.2+0.2*rng.Float64(), 3+rng.Intn(6))
	ps := randomAffine(rng, small, big)
	return ps[0], ps[1]
}

// coveredByTemplate returns (part, whole) with part covered by whole
// (inside touching the boundary).
func coveredByTemplate(rng *rand.Rand) (geom.Polygon, geom.Polygon) {
	switch rng.Intn(3) {
	case 0: // sub-rectangle sharing part of an edge
		w := geom.R(0, 0, 6, 4)
		p := geom.R(0, 1, 2+2*rng.Float64(), 3)
		ps := randomAffine(rng, p.Polygon(), w.Polygon())
		return ps[0], ps[1]
	case 1: // sub-rectangle sharing a corner
		w := geom.R(0, 0, 6, 4)
		p := geom.R(0, 0, 1+2*rng.Float64(), 1+2*rng.Float64())
		ps := randomAffine(rng, p.Polygon(), w.Polygon())
		return ps[0], ps[1]
	default: // triangle with one vertex on the host's boundary
		w := geom.R(0, 0, 6, 4)
		t := geom.Polygon{{X: 0, Y: 2}, {X: 2, Y: 1}, {X: 2, Y: 3}}
		ps := randomAffine(rng, t, w.Polygon())
		return ps[0], ps[1]
	}
}
