package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/index"
)

// itemLine is the NDJSON shape of one data rectangle. It matches the
// server's POST /v1/bulk line format, so a datagen -format ndjson file
// can be piped straight into the endpoint.
type itemLine struct {
	OID  uint64    `json:"oid"`
	Rect []float64 `json:"rect"`
}

// WriteItemsNDJSON writes one {"oid":N,"rect":[minx,miny,maxx,maxy]}
// line per item — the wire format of POST /v1/bulk.
func WriteItemsNDJSON(w io.Writer, items []index.Item) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, it := range items {
		line := itemLine{
			OID:  it.OID,
			Rect: []float64{it.Rect.Min.X, it.Rect.Min.Y, it.Rect.Max.X, it.Rect.Max.Y},
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadItemsNDJSON parses lines written by WriteItemsNDJSON.
func ReadItemsNDJSON(r io.Reader) ([]index.Item, error) {
	dec := json.NewDecoder(r)
	var out []index.Item
	for {
		var line itemLine
		if err := dec.Decode(&line); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("workload: bad ndjson line %d: %w", len(out)+1, err)
		}
		if len(line.Rect) != 4 {
			return nil, fmt.Errorf("workload: ndjson line %d: rect needs 4 coordinates, got %d", len(out)+1, len(line.Rect))
		}
		rect := geom.R(line.Rect[0], line.Rect[1], line.Rect[2], line.Rect[3])
		if !rect.Valid() {
			return nil, fmt.Errorf("workload: degenerate rect for oid %d", line.OID)
		}
		out = append(out, index.Item{OID: line.OID, Rect: rect})
	}
}

// WriteRectsNDJSON writes one {"rect":[...]} line per query rectangle.
func WriteRectsNDJSON(w io.Writer, rects []geom.Rect) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range rects {
		line := struct {
			Rect []float64 `json:"rect"`
		}{Rect: []float64{r.Min.X, r.Min.Y, r.Max.X, r.Max.Y}}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}
