package workload

import (
	"fmt"
	"math"
	"math/rand"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/index"
)

// SizeClass selects one of the paper's three data files: rectangles of
// size at most 0.02%, 0.1% and 0.5% of the global area.
type SizeClass int

// The paper's size classes.
const (
	Small SizeClass = iota
	Medium
	Large
)

func (c SizeClass) String() string {
	switch c {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	}
	return fmt.Sprintf("workload.SizeClass(%d)", int(c))
}

// MaxAreaFraction returns the class's cap on rectangle area relative
// to the workspace area.
func (c SizeClass) MaxAreaFraction() float64 {
	switch c {
	case Small:
		return 0.0002 // 0.02%
	case Medium:
		return 0.001 // 0.1%
	case Large:
		return 0.005 // 0.5%
	}
	panic("workload: invalid size class")
}

// AllSizeClasses returns the three classes in the paper's order.
func AllSizeClasses() []SizeClass { return []SizeClass{Small, Medium, Large} }

// World is the global workspace of the experiments.
func World() geom.Rect { return geom.R(0, 0, 1000, 1000) }

// Dataset is one experimental setup: a data file of rectangles and a
// search file of query rectangles with similar size properties, as in
// the paper's Section 4.
type Dataset struct {
	Class   SizeClass
	Items   []index.Item
	Queries []geom.Rect
}

// PaperDataset generates the paper's setup for a size class: 10,000
// uniformly random data rectangles and 100 query rectangles, sizes
// capped by the class. The generator is fully determined by the seed.
func PaperDataset(class SizeClass, seed int64) *Dataset {
	return NewDataset(class, 10000, 100, seed)
}

// NewDataset generates a dataset with explicit cardinalities.
func NewDataset(class SizeClass, nData, nQueries int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Class: class}
	d.Items = make([]index.Item, nData)
	for i := range d.Items {
		d.Items[i] = index.Item{Rect: RandomRect(rng, class), OID: uint64(i + 1)}
	}
	d.Queries = make([]geom.Rect, nQueries)
	for i := range d.Queries {
		d.Queries[i] = RandomRect(rng, class)
	}
	return d
}

// RandomRect draws one rectangle of the class: area uniform in
// (0, maxFraction·worldArea], aspect ratio log-uniform in [1/4, 4],
// position uniform inside the workspace.
func RandomRect(rng *rand.Rand, class SizeClass) geom.Rect {
	world := World()
	maxArea := class.MaxAreaFraction() * world.Area()
	area := maxArea * (0.05 + 0.95*rng.Float64())
	aspect := ratioLogUniform(rng, 0.25, 4)
	w := sqrtPos(area * aspect)
	h := area / w
	// Clamp pathological shapes to the workspace.
	if w > world.Width() {
		w = world.Width()
		h = area / w
	}
	if h > world.Height() {
		h = world.Height()
		w = area / h
	}
	x := world.Min.X + rng.Float64()*(world.Width()-w)
	y := world.Min.Y + rng.Float64()*(world.Height()-h)
	return geom.R(x, y, x+w, y+h)
}

// ClusteredDataset generates a skewed alternative to the uniform paper
// workload: nClusters Gaussian-ish clusters of rectangles. Used by the
// ablation experiments to test sensitivity to the uniformity
// assumption.
func ClusteredDataset(class SizeClass, nData, nQueries, nClusters int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	world := World()
	centers := make([]geom.Point, nClusters)
	for i := range centers {
		centers[i] = geom.Point{
			X: world.Min.X + rng.Float64()*world.Width(),
			Y: world.Min.Y + rng.Float64()*world.Height(),
		}
	}
	d := &Dataset{Class: class}
	draw := func() geom.Rect {
		c := centers[rng.Intn(nClusters)]
		base := RandomRect(rng, class)
		w, h := base.Width(), base.Height()
		spread := world.Width() * 0.05
		x := clamp(c.X+rng.NormFloat64()*spread, world.Min.X, world.Max.X-w)
		y := clamp(c.Y+rng.NormFloat64()*spread, world.Min.Y, world.Max.Y-h)
		return geom.R(x, y, x+w, y+h)
	}
	d.Items = make([]index.Item, nData)
	for i := range d.Items {
		d.Items[i] = index.Item{Rect: draw(), OID: uint64(i + 1)}
	}
	d.Queries = make([]geom.Rect, nQueries)
	for i := range d.Queries {
		d.Queries[i] = draw()
	}
	return d
}

// ObjectsFor materialises a contiguous region object (crisp polygon)
// for every item of the dataset, for experiments that exercise the
// refinement step. Deterministic given the seed.
func (d *Dataset) ObjectsFor(seed int64) map[uint64]geom.Polygon {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[uint64]geom.Polygon, len(d.Items))
	for _, it := range d.Items {
		out[it.OID] = PolygonInRect(rng, it.Rect, 5+rng.Intn(8))
	}
	return out
}

func ratioLogUniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo * math.Pow(hi/lo, rng.Float64())
}

func sqrtPos(v float64) float64 { return math.Sqrt(v) }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
