package workload

import (
	"bytes"
	"math/rand"
	"testing"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/topo"
)

func TestSizeClasses(t *testing.T) {
	if Small.String() != "small" || Medium.String() != "medium" || Large.String() != "large" {
		t.Fatal("class names broken")
	}
	if !(Small.MaxAreaFraction() < Medium.MaxAreaFraction() &&
		Medium.MaxAreaFraction() < Large.MaxAreaFraction()) {
		t.Fatal("area fractions not increasing")
	}
	if len(AllSizeClasses()) != 3 {
		t.Fatal("AllSizeClasses broken")
	}
}

func TestPaperDatasetShape(t *testing.T) {
	for _, class := range AllSizeClasses() {
		d := PaperDataset(class, 42)
		if len(d.Items) != 10000 || len(d.Queries) != 100 {
			t.Fatalf("%v: %d items, %d queries", class, len(d.Items), len(d.Queries))
		}
		world := World()
		maxArea := class.MaxAreaFraction() * world.Area()
		seen := map[uint64]bool{}
		for _, it := range d.Items {
			if !it.Rect.Valid() || !world.ContainsRect(it.Rect) {
				t.Fatalf("%v: rect %v outside world or degenerate", class, it.Rect)
			}
			if a := it.Rect.Area(); a > maxArea*(1+1e-9) {
				t.Fatalf("%v: rect area %g exceeds cap %g", class, a, maxArea)
			}
			if seen[it.OID] {
				t.Fatalf("duplicate OID %d", it.OID)
			}
			seen[it.OID] = true
		}
		for _, q := range d.Queries {
			if !q.Valid() || q.Area() > maxArea*(1+1e-9) {
				t.Fatalf("%v: bad query rect %v", class, q)
			}
		}
	}
}

func TestDatasetDeterministic(t *testing.T) {
	a := PaperDataset(Medium, 7)
	b := PaperDataset(Medium, 7)
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Fatal("dataset not reproducible for equal seeds")
		}
	}
	c := PaperDataset(Medium, 8)
	same := true
	for i := range a.Items {
		if a.Items[i] != c.Items[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestClusteredDataset(t *testing.T) {
	d := ClusteredDataset(Medium, 2000, 50, 5, 3)
	if len(d.Items) != 2000 || len(d.Queries) != 50 {
		t.Fatal("clustered dataset shape")
	}
	world := World()
	for _, it := range d.Items {
		if !it.Rect.Valid() || !world.ContainsRect(it.Rect) {
			t.Fatalf("clustered rect %v invalid", it.Rect)
		}
	}
}

func TestObjectsForCrisp(t *testing.T) {
	d := NewDataset(Medium, 200, 10, 5)
	objs := d.ObjectsFor(9)
	if len(objs) != 200 {
		t.Fatalf("%d objects", len(objs))
	}
	for _, it := range d.Items {
		pg := objs[it.OID]
		if err := pg.Validate(); err != nil {
			t.Fatalf("object %d invalid: %v", it.OID, err)
		}
		b := pg.Bounds()
		const tol = 1e-9
		if abs(b.Min.X-it.Rect.Min.X) > tol || abs(b.Min.Y-it.Rect.Min.Y) > tol ||
			abs(b.Max.X-it.Rect.Max.X) > tol || abs(b.Max.Y-it.Rect.Max.Y) > tol {
			t.Fatalf("object %d MBR %v not crisp in %v", it.OID, b, it.Rect)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestPolygonInRectCrisp(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		r := RandomRect(rng, Large)
		pg := PolygonInRect(rng, r, 3+rng.Intn(9))
		if err := pg.Validate(); err != nil {
			t.Fatalf("invalid polygon: %v", err)
		}
		b := pg.Bounds()
		if abs(b.Min.X-r.Min.X) > 1e-9 || abs(b.Max.X-r.Max.X) > 1e-9 ||
			abs(b.Min.Y-r.Min.Y) > 1e-9 || abs(b.Max.Y-r.Max.Y) > 1e-9 {
			t.Fatalf("MBR %v not crisp in %v", b, r)
		}
	}
}

// TestPairInRelationAllRelations: the generator must deliver valid
// pairs for every relation (this also guards the property tests in
// package mbr against silent generator degradation).
func TestPairInRelationAllRelations(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, r := range topo.All() {
		for i := 0; i < 25; i++ {
			p, q := PairInRelation(rng, r)
			if got := geom.Relate(p, q); got != r {
				t.Fatalf("PairInRelation(%v) produced %v", r, got)
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := NewDataset(Small, 50, 7, 1)
	var buf bytes.Buffer
	if err := WriteItemsCSV(&buf, d.Items); err != nil {
		t.Fatal(err)
	}
	items, err := ReadItemsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(d.Items) {
		t.Fatalf("%d items back", len(items))
	}
	for i := range items {
		if items[i] != d.Items[i] {
			t.Fatalf("item %d mismatch", i)
		}
	}
	buf.Reset()
	if err := WriteRectsCSV(&buf, d.Queries); err != nil {
		t.Fatal(err)
	}
	rects, err := ReadRectsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rects {
		if rects[i] != d.Queries[i] {
			t.Fatalf("query %d mismatch", i)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadItemsCSV(bytes.NewBufferString("x,1,2,3,4\n")); err == nil {
		t.Error("bad oid accepted")
	}
	if _, err := ReadItemsCSV(bytes.NewBufferString("1,a,2,3,4\n")); err == nil {
		t.Error("bad coordinate accepted")
	}
	if _, err := ReadItemsCSV(bytes.NewBufferString("1,5,5,1,6\n")); err == nil {
		t.Error("degenerate rect accepted")
	}
	if _, err := ReadRectsCSV(bytes.NewBufferString("1,2,3\n")); err == nil {
		t.Error("short row accepted")
	}
	if _, err := ReadRectsCSV(bytes.NewBufferString("3,3,1,4\n")); err == nil {
		t.Error("degenerate query accepted")
	}
}
