package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/index"
)

// WriteItemsCSV writes "oid,minx,miny,maxx,maxy" rows.
func WriteItemsCSV(w io.Writer, items []index.Item) error {
	cw := csv.NewWriter(w)
	for _, it := range items {
		rec := []string{
			strconv.FormatUint(it.OID, 10),
			fmtF(it.Rect.Min.X), fmtF(it.Rect.Min.Y),
			fmtF(it.Rect.Max.X), fmtF(it.Rect.Max.Y),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadItemsCSV parses rows written by WriteItemsCSV.
func ReadItemsCSV(r io.Reader) ([]index.Item, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	var out []index.Item
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		oid, err := strconv.ParseUint(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: bad oid %q: %w", rec[0], err)
		}
		vals := make([]float64, 4)
		for i := 0; i < 4; i++ {
			vals[i], err = strconv.ParseFloat(rec[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("workload: bad coordinate %q: %w", rec[i+1], err)
			}
		}
		rect := geom.R(vals[0], vals[1], vals[2], vals[3])
		if !rect.Valid() {
			return nil, fmt.Errorf("workload: degenerate rect for oid %d", oid)
		}
		out = append(out, index.Item{OID: oid, Rect: rect})
	}
}

// WriteRectsCSV writes "minx,miny,maxx,maxy" rows (search files).
func WriteRectsCSV(w io.Writer, rects []geom.Rect) error {
	cw := csv.NewWriter(w)
	for _, r := range rects {
		rec := []string{fmtF(r.Min.X), fmtF(r.Min.Y), fmtF(r.Max.X), fmtF(r.Max.Y)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadRectsCSV parses rows written by WriteRectsCSV.
func ReadRectsCSV(r io.Reader) ([]geom.Rect, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	var out []geom.Rect
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		vals := make([]float64, 4)
		for i := range vals {
			vals[i], err = strconv.ParseFloat(rec[i], 64)
			if err != nil {
				return nil, fmt.Errorf("workload: bad coordinate %q: %w", rec[i], err)
			}
		}
		rect := geom.R(vals[0], vals[1], vals[2], vals[3])
		if !rect.Valid() {
			return nil, fmt.Errorf("workload: degenerate query rect %v", rect)
		}
		out = append(out, rect)
	}
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
