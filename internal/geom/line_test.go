package geom

import (
	"math/rand"
	"testing"

	"mbrtopo/internal/topo"
)

func TestPolyLineValidate(t *testing.T) {
	good := PolyLine{{0, 0}, {2, 1}, {4, 0}, {5, 3}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good polyline: %v", err)
	}
	cases := []struct {
		name string
		pl   PolyLine
	}{
		{"too short", PolyLine{{0, 0}}},
		{"repeated vertex", PolyLine{{0, 0}, {0, 0}, {1, 1}}},
		{"closed ring", PolyLine{{0, 0}, {1, 0}, {1, 1}, {0, 0}}},
		{"self crossing", PolyLine{{0, 0}, {2, 2}, {2, 0}, {0, 2}}},
		{"touching earlier segment", PolyLine{{0, 0}, {4, 0}, {4, 2}, {2, 0}}},
	}
	for _, c := range cases {
		if err := c.pl.Validate(); err == nil {
			t.Errorf("%s: validated unexpectedly", c.name)
		}
	}
}

func TestPolyLineBasics(t *testing.T) {
	pl := PolyLine{{0, 0}, {3, 0}, {3, 4}}
	if pl.NumSegs() != 2 || pl.Length() != 7 {
		t.Fatalf("segs=%d length=%v", pl.NumSegs(), pl.Length())
	}
	if got := pl.Bounds(); got != R(0, 0, 3, 4) {
		t.Fatalf("bounds: %v", got)
	}
	if got := pl.Translate(Point{1, 1}).Bounds(); got != R(1, 1, 4, 5) {
		t.Fatalf("translate: %v", got)
	}
	if got := pl.Seg(1); got != (Segment{Point{3, 0}, Point{3, 4}}) {
		t.Fatalf("seg: %v", got)
	}
}

func TestRelateLineRegionFixtures(t *testing.T) {
	region := R(0, 0, 10, 10).Polygon()
	L := Polygon{{0, 0}, {6, 0}, {6, 2}, {2, 2}, {2, 6}, {0, 6}} // concave host
	cases := []struct {
		name   string
		line   PolyLine
		region Region
		want   LineRegionRelation
	}{
		{"far away", PolyLine{{20, 20}, {25, 25}}, region, LRDisjoint},
		{"crosses through", PolyLine{{-2, 5}, {12, 5}}, region, LRCross},
		{"enters and stays", PolyLine{{-2, 5}, {5, 5}}, region, LRCross},
		{"strictly within", PolyLine{{2, 2}, {8, 3}, {5, 8}}, region, LRWithin},
		{"within touching wall", PolyLine{{0, 5}, {5, 5}}, region, LRCoveredBy},
		{"chord between boundary points", PolyLine{{0, 2}, {5, 5}, {10, 2}}, region, LRCoveredBy},
		{"endpoint touch from outside", PolyLine{{-5, 5}, {0, 5}}, region, LRTouch},
		{"interior-point touch from outside", PolyLine{{-5, -5}, {0, 5}, {-5, 15}}, region, LRTouch},
		{"runs along edge", PolyLine{{0, 2}, {0, 8}}, region, LROnBoundary},
		{"along edge then away", PolyLine{{-3, 0}, {0, 2}, {0, 8}}, region, LRTouch},
		{"corner clip of concave host", PolyLine{{4, -1}, {4, 1}, {8, 1}}, L, LRCross},
		{"through the notch", PolyLine{{4, 4}, {8, 8}}, L, LRDisjoint},
		{"notch wall ride", PolyLine{{2, 3}, {2, 5}}, L, LROnBoundary},
	}
	for _, c := range cases {
		if err := c.line.Validate(); err != nil {
			t.Fatalf("%s: bad fixture: %v", c.name, err)
		}
		got, m := RelateLineRegion(c.line, c.region)
		if got != c.want {
			t.Errorf("%s: relation %v, want %v (matrix %v)", c.name, got, c.want, m)
		}
		// Structural matrix facts.
		if !m[topo.Exterior][topo.Exterior] || !m[topo.Exterior][topo.Interior] || !m[topo.Exterior][topo.Boundary] {
			t.Errorf("%s: line exterior must meet all region parts", c.name)
		}
	}
}

// TestRelateLineRegionMatrixConsistency: the named relation must be a
// function of the returned matrix's point-set content.
func TestRelateLineRegionMatrixConsistency(t *testing.T) {
	region := R(0, 0, 10, 10).Polygon()
	rng := rand.New(rand.NewSource(8))
	seen := map[LineRegionRelation]int{}
	for i := 0; i < 3000; i++ {
		n := 2 + rng.Intn(4)
		pl := make(PolyLine, n)
		for j := range pl {
			pl[j] = Point{X: rng.Float64()*24 - 7, Y: rng.Float64()*24 - 7}
		}
		if pl.Validate() != nil {
			continue
		}
		rel, m := RelateLineRegion(pl, region)
		if !rel.Valid() {
			t.Fatalf("invalid relation for %v", pl)
		}
		seen[rel]++
		insideAny := m[topo.Interior][topo.Interior] || m[topo.Boundary][topo.Interior]
		outsideAny := m[topo.Interior][topo.Exterior] || m[topo.Boundary][topo.Exterior]
		switch rel {
		case LRDisjoint:
			if insideAny || m[topo.Interior][topo.Boundary] || m[topo.Boundary][topo.Boundary] {
				t.Fatalf("disjoint with contact: %v %v", pl, m)
			}
		case LRCross:
			if !insideAny || !outsideAny {
				t.Fatalf("cross without in/out: %v %v", pl, m)
			}
		case LRWithin:
			if !insideAny || outsideAny || m[topo.Interior][topo.Boundary] || m[topo.Boundary][topo.Boundary] {
				t.Fatalf("within with contact/outside: %v %v", pl, m)
			}
		case LRTouch:
			if insideAny || !outsideAny {
				t.Fatalf("touch with interior points: %v %v", pl, m)
			}
		}
	}
	// Random float lines realise at least these three.
	for _, rel := range []LineRegionRelation{LRDisjoint, LRCross, LRWithin} {
		if seen[rel] == 0 {
			t.Errorf("relation %v never generated: %v", rel, seen)
		}
	}
}

// TestRelateLineRegionMultiHost: lines against a non-contiguous host.
func TestRelateLineRegionMultiHost(t *testing.T) {
	ring := ring4()
	cases := []struct {
		name string
		line PolyLine
		want LineRegionRelation
	}{
		{"inside the hole", PolyLine{{2.5, 2.5}, {3.5, 3.5}}, LRDisjoint},
		{"spanning the hole wall to wall", PolyLine{{2, 3}, {4, 3}}, LRTouch},
		{"through a bar", PolyLine{{3, 0}, {3, 2.5}}, LRCross},
		{"within the bottom bar", PolyLine{{2, 1.5}, {4, 1.5}}, LRWithin},
		{"across the whole ring", PolyLine{{0, 3}, {6, 3}}, LRCross},
	}
	for _, c := range cases {
		if got, _ := RelateLineRegion(c.line, ring); got != c.want {
			t.Errorf("%s: %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRelatePointRegion(t *testing.T) {
	region := R(0, 0, 4, 4).Polygon()
	if got := RelatePointRegion(Point{2, 2}, region); got != PointInside {
		t.Errorf("center: %v", got)
	}
	if got := RelatePointRegion(Point{0, 2}, region); got != PointOnBoundary {
		t.Errorf("edge: %v", got)
	}
	if got := RelatePointRegion(Point{9, 9}, region); got != PointOutside {
		t.Errorf("far: %v", got)
	}
}

func TestLineRegionRelationNames(t *testing.T) {
	for _, r := range AllLineRegionRelations() {
		if !r.Valid() || r.String() == "" {
			t.Errorf("relation %d invalid", r)
		}
	}
	if LineRegionRelation(99).Valid() {
		t.Error("out-of-range relation valid")
	}
	if LineRegionRelation(99).String() != "geom.LineRegionRelation(99)" {
		t.Error("out-of-range String broken")
	}
}
