package geom

import (
	"fmt"
	"math"
	"sort"

	"mbrtopo/internal/topo"
)

// Region abstracts a (possibly non-contiguous) 2-dimensional region:
// simple polygons (the paper's contiguous regions) and multi-polygons
// (the paper's Section 7 extension — "geographic entities, such as
// countries with islands, consist of disconnected components").
type Region interface {
	// BoundarySegments returns the region's effective boundary: for a
	// multi-part region, segments where two components abut are
	// interior to the union and are dissolved.
	BoundarySegments() []Segment
	// LocatePoint classifies a point against the region's point set.
	LocatePoint(pt Point) PointLocation
	// InteriorSamples returns one strictly interior point per
	// connected component.
	InteriorSamples() ([]Point, bool)
	// Bounds returns the region's MBR.
	Bounds() Rect
	// Validate checks structural validity.
	Validate() error
}

// Polygon implements Region.
var _ Region = Polygon(nil)

// BoundarySegments returns the polygon's edges.
func (pg Polygon) BoundarySegments() []Segment {
	out := make([]Segment, len(pg))
	for i := range pg {
		out[i] = pg.Edge(i)
	}
	return out
}

// InteriorSamples returns a single interior point (a polygon is one
// component).
func (pg Polygon) InteriorSamples() ([]Point, bool) {
	p, ok := pg.InteriorPoint()
	if !ok {
		return nil, false
	}
	return []Point{p}, true
}

// MultiPolygon is a region made of one or more components whose
// interiors are pairwise disjoint. Components may touch (abut along
// edges or at points); shared boundary segments are interior to the
// union and are dissolved by BoundarySegments. It models the paper's
// non-contiguous geographic entities.
type MultiPolygon []Polygon

var _ Region = MultiPolygon(nil)

// Validate checks every component and pairwise interior disjointness.
func (mp MultiPolygon) Validate() error {
	if len(mp) == 0 {
		return fmt.Errorf("geom: empty multipolygon")
	}
	for i, pg := range mp {
		if err := pg.Validate(); err != nil {
			return fmt.Errorf("geom: component %d: %w", i, err)
		}
	}
	for i := 0; i < len(mp); i++ {
		for j := i + 1; j < len(mp); j++ {
			switch Relate(mp[i], mp[j]) {
			case topo.Disjoint, topo.Meet:
			default:
				return fmt.Errorf("geom: components %d and %d share interior", i, j)
			}
		}
	}
	return nil
}

// Bounds returns the MBR of the union of components.
func (mp MultiPolygon) Bounds() Rect {
	r := mp[0].Bounds()
	for _, pg := range mp[1:] {
		r = r.Union(pg.Bounds())
	}
	return r
}

// Area returns the total area.
func (mp MultiPolygon) Area() float64 {
	a := 0.0
	for _, pg := range mp {
		a += pg.Area()
	}
	return a
}

// BoundarySegments returns the union's boundary: every component edge
// is split at its intersections with sibling boundaries, and pieces
// that run along a sibling's boundary are dropped — because component
// interiors are disjoint, the siblings lie on opposite sides of such a
// piece, making it interior to the union.
func (mp MultiPolygon) BoundarySegments() []Segment {
	if len(mp) == 1 {
		return mp[0].BoundarySegments()
	}
	var out []Segment
	for ci, pg := range mp {
		for i := range pg {
			e := pg.Edge(i)
			ts := []float64{0, 1}
			for cj, sib := range mp {
				if cj == ci {
					continue
				}
				if !sib.Bounds().Grow(Eps).Intersects(e.Bounds()) {
					continue
				}
				for j := range sib {
					pts, _ := e.Intersections(sib.Edge(j))
					for _, p := range pts {
						t := e.paramOf(p)
						if t > Eps && t < 1-Eps {
							ts = append(ts, t)
						}
					}
				}
			}
			sort.Float64s(ts)
			for k := 0; k+1 < len(ts); k++ {
				t0, t1 := ts[k], ts[k+1]
				if t1-t0 <= 2*Eps {
					continue
				}
				mid := e.At((t0 + t1) / 2)
				seam := false
				for cj, sib := range mp {
					if cj != ci && sib.LocatePoint(mid) == PointOnBoundary {
						seam = true
						break
					}
				}
				if !seam {
					out = append(out, Segment{A: e.At(t0), B: e.At(t1)})
				}
			}
		}
	}
	return out
}

// LocatePoint classifies pt against the union of components. A point
// on the shared boundary of two abutting components is interior to the
// union; ambiguous multi-boundary points are resolved by probing a
// small circle around the point.
func (mp MultiPolygon) LocatePoint(pt Point) PointLocation {
	onCount := 0
	for _, pg := range mp {
		switch pg.LocatePoint(pt) {
		case PointInside:
			return PointInside
		case PointOnBoundary:
			onCount++
		}
	}
	switch {
	case onCount == 0:
		return PointOutside
	case onCount == 1:
		return PointOnBoundary
	}
	// On the boundary of several components: interior to the union iff
	// a small neighbourhood is covered. Probe a circle around pt.
	radius := 64 * Eps * (1 + abs(pt.X) + abs(pt.Y))
	for k := 0; k < 16; k++ {
		p := Point{
			X: pt.X + radius*cosTable[k],
			Y: pt.Y + radius*sinTable[k],
		}
		covered := false
		for _, pg := range mp {
			if pg.LocatePoint(p) != PointOutside {
				covered = true
				break
			}
		}
		if !covered {
			return PointOnBoundary
		}
	}
	return PointInside
}

// InteriorSamples returns one interior point per component.
func (mp MultiPolygon) InteriorSamples() ([]Point, bool) {
	out := make([]Point, 0, len(mp))
	for _, pg := range mp {
		p, ok := pg.InteriorPoint()
		if !ok {
			return nil, false
		}
		out = append(out, p)
	}
	return out, true
}

// Translate returns the multipolygon shifted by v.
func (mp MultiPolygon) Translate(v Point) MultiPolygon {
	out := make(MultiPolygon, len(mp))
	for i, pg := range mp {
		out[i] = pg.Translate(v)
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// cosTable/sinTable hold 16 probing directions, offset from the axes
// to avoid degenerate alignment with rectilinear data.
var cosTable, sinTable [16]float64

func init() {
	for k := 0; k < 16; k++ {
		ang := (float64(k) + 0.37) * (2 * math.Pi / 16)
		cosTable[k] = math.Cos(ang)
		sinTable[k] = math.Sin(ang)
	}
}
