package geom

import "math"

// Segment is a closed line segment between two points.
type Segment struct {
	A, B Point
}

// Length returns the segment's Euclidean length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the segment's midpoint.
func (s Segment) Midpoint() Point {
	return Point{(s.A.X + s.B.X) / 2, (s.A.Y + s.B.Y) / 2}
}

// At returns the point at parameter t ∈ [0,1] along the segment.
func (s Segment) At(t float64) Point {
	return Point{s.A.X + t*(s.B.X-s.A.X), s.A.Y + t*(s.B.Y-s.A.Y)}
}

// Bounds returns the segment's bounding rectangle (possibly degenerate).
func (s Segment) Bounds() Rect {
	return Rect{
		Min: Point{min(s.A.X, s.B.X), min(s.A.Y, s.B.Y)},
		Max: Point{max(s.A.X, s.B.X), max(s.A.Y, s.B.Y)},
	}
}

// DistToPoint returns the distance from p to the closed segment.
func (s Segment) DistToPoint(p Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 == 0 {
		return p.Dist(s.A)
	}
	t := p.Sub(s.A).Dot(d) / l2
	t = max(0, min(1, t))
	return p.Dist(s.At(t))
}

// ContainsPoint reports whether p lies on the closed segment within Eps.
func (s Segment) ContainsPoint(p Point) bool {
	return s.DistToPoint(p) <= Eps
}

// paramOf returns the parameter t of the projection of p onto the
// segment's supporting line (unclamped).
func (s Segment) paramOf(p Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 == 0 {
		return 0
	}
	return p.Sub(s.A).Dot(d) / l2
}

// Intersections returns the points where the two closed segments meet:
// nothing when disjoint, one point for a crossing or touch, and the two
// overlap endpoints when the segments are collinear and overlap. The
// Crosses result reports whether the segments cross transversally at a
// point interior to both (the strongest form of boundary intersection).
func (s Segment) Intersections(t Segment) (pts []Point, crosses bool) {
	if !s.Bounds().Grow(Eps).Intersects(t.Bounds().Grow(Eps)) {
		return nil, false
	}
	d1 := cross2(t.A, t.B, s.A)
	d2 := cross2(t.A, t.B, s.B)
	d3 := cross2(s.A, s.B, t.A)
	d4 := cross2(s.A, s.B, t.B)

	// Scale-aware tolerance for the orientation tests.
	scale := max(s.Length(), t.Length())
	tol := Eps * max(1, scale)

	z1, z2 := math.Abs(d1) <= tol, math.Abs(d2) <= tol
	z3, z4 := math.Abs(d3) <= tol, math.Abs(d4) <= tol

	if z1 && z2 && z3 && z4 {
		// Collinear: report the overlap endpoints (0, 1, or 2 points).
		var out []Point
		add := func(p Point) {
			for _, q := range out {
				if q.Eq(p) {
					return
				}
			}
			out = append(out, p)
		}
		for _, p := range []Point{s.A, s.B} {
			if t.ContainsPoint(p) {
				add(p)
			}
		}
		for _, p := range []Point{t.A, t.B} {
			if s.ContainsPoint(p) {
				add(p)
			}
		}
		return out, false
	}

	properStraddleS := (d1 > tol && d2 < -tol) || (d1 < -tol && d2 > tol)
	properStraddleT := (d3 > tol && d4 < -tol) || (d3 < -tol && d4 > tol)
	if properStraddleS && properStraddleT {
		// Transversal crossing; solve for the intersection point.
		p := lineIntersection(s, t)
		interiorS := s.paramOf(p) > Eps && s.paramOf(p) < 1-Eps
		interiorT := t.paramOf(p) > Eps && t.paramOf(p) < 1-Eps
		return []Point{p}, interiorS && interiorT
	}

	// Touching cases: an endpoint of one segment lies on the other.
	var out []Point
	add := func(p Point) {
		for _, q := range out {
			if q.Eq(p) {
				return
			}
		}
		out = append(out, p)
	}
	if (z1 || z2) || (z3 || z4) {
		if z1 && t.ContainsPoint(s.A) {
			add(s.A)
		}
		if z2 && t.ContainsPoint(s.B) {
			add(s.B)
		}
		if z3 && s.ContainsPoint(t.A) {
			add(t.A)
		}
		if z4 && s.ContainsPoint(t.B) {
			add(t.B)
		}
	}
	return out, false
}

// lineIntersection returns the intersection of the supporting lines of
// two non-parallel segments.
func lineIntersection(s, t Segment) Point {
	d1 := s.B.Sub(s.A)
	d2 := t.B.Sub(t.A)
	den := d1.Cross(d2)
	u := t.A.Sub(s.A).Cross(d2) / den
	return s.At(u)
}
