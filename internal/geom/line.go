package geom

import (
	"fmt"
	"sort"

	"mbrtopo/internal/topo"
)

// PolyLine is a simple open polyline: a linear geographic feature
// (road, river, pipeline). The paper's Section 7 lists linear data as
// the extension requiring further machinery; this file provides the
// exact geometry — the 9-intersection classification of a line against
// a region — and package mbr derives the corresponding filter sets.
//
// Under the 9-intersection model a simple line has an interior (the
// line minus its endpoints) and a boundary (the two endpoints).
type PolyLine []Point

// Validate checks that the polyline has at least two distinct
// vertices, no repeated consecutive vertices, does not close into a
// ring, and does not self-intersect.
func (pl PolyLine) Validate() error {
	if len(pl) < 2 {
		return fmt.Errorf("geom: polyline needs ≥2 vertices, has %d", len(pl))
	}
	for i := 0; i+1 < len(pl); i++ {
		if pl[i].Eq(pl[i+1]) {
			return fmt.Errorf("geom: repeated consecutive vertex at %d", i)
		}
	}
	if pl[0].Eq(pl[len(pl)-1]) {
		return fmt.Errorf("geom: polyline closes into a ring")
	}
	n := len(pl) - 1
	for i := 0; i < n; i++ {
		si := pl.Seg(i)
		for j := i + 1; j < n; j++ {
			pts, crosses := si.Intersections(pl.Seg(j))
			if crosses {
				return fmt.Errorf("geom: polyline segments %d and %d cross", i, j)
			}
			if j == i+1 {
				if len(pts) > 1 || (len(pts) == 1 && !pts[0].Eq(pl[j])) {
					return fmt.Errorf("geom: polyline segments %d and %d overlap", i, j)
				}
			} else if len(pts) > 0 {
				return fmt.Errorf("geom: polyline segments %d and %d touch", i, j)
			}
		}
	}
	return nil
}

// NumSegs returns the number of segments.
func (pl PolyLine) NumSegs() int { return len(pl) - 1 }

// Seg returns the i-th segment.
func (pl PolyLine) Seg(i int) Segment { return Segment{A: pl[i], B: pl[i+1]} }

// Length returns the total length.
func (pl PolyLine) Length() float64 {
	total := 0.0
	for i := 0; i < pl.NumSegs(); i++ {
		total += pl.Seg(i).Length()
	}
	return total
}

// Bounds returns the polyline's MBR. Note that an axis-aligned line
// has a degenerate MBR, which MBR-based access methods cannot store
// directly (the paper's Section 7 points out that linear data changes
// the projection algebra); callers index such lines with an
// ε-padded rectangle and the non-crisp machinery.
func (pl PolyLine) Bounds() Rect {
	r := Rect{Min: pl[0], Max: pl[0]}
	for _, p := range pl[1:] {
		r.Min.X = min(r.Min.X, p.X)
		r.Min.Y = min(r.Min.Y, p.Y)
		r.Max.X = max(r.Max.X, p.X)
		r.Max.Y = max(r.Max.Y, p.Y)
	}
	return r
}

// Translate returns the polyline shifted by v.
func (pl PolyLine) Translate(v Point) PolyLine {
	out := make(PolyLine, len(pl))
	for i, p := range pl {
		out[i] = p.Add(v)
	}
	return out
}

// LineRegionRelation names the topological relation of a line with
// respect to a region: the partition of line-region configurations by
// the paper-relevant distinctions (each corresponds to a family of
// 9-intersection matrices; RelateLineRegion also returns the exact
// matrix).
type LineRegionRelation uint8

// The line-region relations.
const (
	// LRDisjoint: the line and the region share no point.
	LRDisjoint LineRegionRelation = iota
	// LRTouch: the line meets the region's boundary only (no point of
	// the line lies in the region's interior or... it may run along the
	// boundary, but never enters the interior, and part of it lies
	// outside).
	LRTouch
	// LRCross: the line has points both in the region's interior and in
	// its exterior.
	LRCross
	// LRWithin: the line lies entirely in the region's interior.
	LRWithin
	// LRCoveredBy: the line lies in the closed region, touching the
	// boundary, with at least part in the interior.
	LRCoveredBy
	// LROnBoundary: the line runs entirely along the region's boundary.
	LROnBoundary
)

// NumLineRegionRelations counts the defined line-region relations.
const NumLineRegionRelations = 6

var lrNames = [NumLineRegionRelations]string{
	"lr_disjoint", "lr_touch", "lr_cross", "lr_within", "lr_covered_by", "lr_on_boundary",
}

func (r LineRegionRelation) String() string {
	if int(r) < len(lrNames) {
		return lrNames[r]
	}
	return fmt.Sprintf("geom.LineRegionRelation(%d)", uint8(r))
}

// Valid reports whether r is a defined relation.
func (r LineRegionRelation) Valid() bool { return r < NumLineRegionRelations }

// AllLineRegionRelations returns the six relations.
func AllLineRegionRelations() []LineRegionRelation {
	out := make([]LineRegionRelation, NumLineRegionRelations)
	for i := range out {
		out[i] = LineRegionRelation(i)
	}
	return out
}

// RelateLineRegion classifies the line against the region, returning
// both the named relation and the full 9-intersection matrix (line
// interior/boundary/exterior against region interior/boundary/
// exterior).
func RelateLineRegion(L PolyLine, R Region) (LineRegionRelation, topo.Matrix) {
	var in, on, out, touchInterior bool
	endpoints := [2]Point{L[0], L[len(L)-1]}
	rb := R.Bounds().Grow(Eps)
	rSegs := R.BoundarySegments()
	for i := 0; i < L.NumSegs(); i++ {
		e := L.Seg(i)
		if !rb.Intersects(e.Bounds()) {
			out = true
			continue
		}
		ts := []float64{0, 1}
		for _, qe := range rSegs {
			pts, _ := e.Intersections(qe)
			for _, p := range pts {
				// Contact counts as line-interior contact unless it is
				// one of the line's two endpoints.
				if !p.Eq(endpoints[0]) && !p.Eq(endpoints[1]) {
					touchInterior = true
				}
				t := e.paramOf(p)
				if t > Eps && t < 1-Eps {
					ts = append(ts, t)
				}
			}
		}
		sort.Float64s(ts)
		for k := 0; k+1 < len(ts); k++ {
			t0, t1 := ts[k], ts[k+1]
			if t1-t0 <= 2*Eps {
				continue
			}
			switch R.LocatePoint(e.At((t0 + t1) / 2)) {
			case PointInside:
				in = true
			case PointOnBoundary:
				on = true
			case PointOutside:
				out = true
			}
		}
	}
	endA := R.LocatePoint(L[0])
	endB := R.LocatePoint(L[len(L)-1])

	// Assemble the 9-intersection matrix. Row 0: line interior; row 1:
	// line boundary (the endpoints); row 2: line exterior. The line's
	// exterior is the whole plane minus the line, so it always meets
	// the region's interior, boundary and exterior (a line cannot cover
	// a 2D set or a closed boundary curve).
	var m topo.Matrix
	m[topo.Interior][topo.Interior] = in
	m[topo.Interior][topo.Boundary] = on || touchInterior
	m[topo.Interior][topo.Exterior] = out
	m[topo.Boundary][topo.Interior] = endA == PointInside || endB == PointInside
	m[topo.Boundary][topo.Boundary] = endA == PointOnBoundary || endB == PointOnBoundary
	m[topo.Boundary][topo.Exterior] = endA == PointOutside || endB == PointOutside
	m[topo.Exterior][topo.Interior] = true
	m[topo.Exterior][topo.Boundary] = true
	m[topo.Exterior][topo.Exterior] = true

	// Endpoint contact alone also makes the boundaries/closures touch.
	sharesBoundary := on || touchInterior || endA == PointOnBoundary || endB == PointOnBoundary
	insideAny := in || endA == PointInside || endB == PointInside
	outsideAny := out || endA == PointOutside || endB == PointOutside

	switch {
	case !insideAny && !sharesBoundary && !on:
		return LRDisjoint, m
	case insideAny && outsideAny:
		return LRCross, m
	case insideAny && !outsideAny:
		if sharesBoundary {
			return LRCoveredBy, m
		}
		return LRWithin, m
	case !insideAny && !outsideAny:
		// Everything runs along the boundary.
		return LROnBoundary, m
	default:
		return LRTouch, m
	}
}

// RelatePointRegion classifies a point against a region (point data,
// the paper's Section 7): PointInside, PointOnBoundary or
// PointOutside.
func RelatePointRegion(p Point, R Region) PointLocation {
	return R.LocatePoint(p)
}
