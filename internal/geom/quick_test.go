package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// rectGen makes Rect implement quick.Generator with sane coordinates.
type rectGen struct{ R Rect }

// Generate implements quick.Generator.
func (rectGen) Generate(rng *rand.Rand, _ int) reflect.Value {
	x := rng.Float64()*200 - 100
	y := rng.Float64()*200 - 100
	w := 0.01 + rng.Float64()*50
	h := 0.01 + rng.Float64()*50
	return reflect.ValueOf(rectGen{R: R(x, y, x+w, y+h)})
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 5000}
}

// TestQuickRectUnion: the union contains both operands, is commutative
// and idempotent.
func TestQuickRectUnion(t *testing.T) {
	f := func(a, b rectGen) bool {
		u := a.R.Union(b.R)
		return u.ContainsRect(a.R) && u.ContainsRect(b.R) &&
			u == b.R.Union(a.R) && u.Union(a.R) == u
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRectIntersect: an interior intersection lies inside both
// operands and its area equals OverlapArea.
func TestQuickRectIntersect(t *testing.T) {
	f := func(a, b rectGen) bool {
		got, ok := a.R.Intersect(b.R)
		if ok != a.R.IntersectsInterior(b.R) {
			return false
		}
		if !ok {
			return a.R.OverlapArea(b.R) == 0 ||
				// Touching rectangles have zero overlap area too.
				!a.R.IntersectsInterior(b.R)
		}
		return a.R.ContainsRect(got) && b.R.ContainsRect(got) &&
			math.Abs(got.Area()-a.R.OverlapArea(b.R)) < 1e-9*(1+got.Area())
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRectDist: DistToPoint is zero exactly on containment, and
// symmetric under translation.
func TestQuickRectDist(t *testing.T) {
	f := func(a rectGen, px, py float64) bool {
		p := Point{X: math.Mod(px, 300), Y: math.Mod(py, 300)}
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			p = Point{}
		}
		d := a.R.DistToPoint(p)
		if (d == 0) != a.R.ContainsPoint(p) {
			return false
		}
		// Translation invariance.
		v := Point{X: 17.5, Y: -3.25}
		moved := Rect{Min: a.R.Min.Add(v), Max: a.R.Max.Add(v)}
		return math.Abs(moved.DistToPoint(p.Add(v))-d) < 1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEnlargeNonNegative: enlargement is never negative and zero
// exactly when the rectangle already covers the other.
func TestQuickEnlargeNonNegative(t *testing.T) {
	f := func(a, b rectGen) bool {
		e := a.R.Enlarge(b.R)
		if e < -1e-9 {
			return false
		}
		if a.R.ContainsRect(b.R) {
			return e < 1e-9
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSegmentIntersectionSymmetry: intersection results are
// symmetric in the operands.
func TestQuickSegmentIntersectionSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy uint8) bool {
		s := Segment{Point{float64(ax % 16), float64(ay % 16)}, Point{float64(bx % 16), float64(by % 16)}}
		u := Segment{Point{float64(cx % 16), float64(cy % 16)}, Point{float64(dx % 16), float64(dy % 16)}}
		p1, c1 := s.Intersections(u)
		p2, c2 := u.Intersections(s)
		return len(p1) == len(p2) && c1 == c2
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}
