// Package geom provides the computational-geometry substrate of the
// reproduction: points, rectangles, simple polygons, and the exact
// topological relation between two contiguous regions under the
// 9-intersection model. The polygon Relate function is the paper's
// refinement step ("examined by using computational geometry
// techniques") and doubles as the ground truth against which every
// MBR-level approximation in the repository is property-tested.
package geom

import "math"

// Eps is the default tolerance used for incidence decisions (a point
// lying on a segment, coincident intersection points). Coordinates are
// assumed to be of magnitude ~1e3 or less, as produced by the workload
// generators; for other scales use the *WithEps variants.
const Eps = 1e-9

// Point is a point in the Euclidean plane.
type Point struct {
	X, Y float64
}

// Add returns p translated by v.
func (p Point) Add(v Point) Point { return Point{p.X + v.X, p.Y + v.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f about the origin.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dot returns the dot product of the two points read as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Dist returns the Euclidean distance between the points.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Eq reports whether the points coincide within Eps.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// cross2 returns the orientation value of the triple (a, b, c):
// positive when c lies to the left of the directed line a→b.
func cross2(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}
