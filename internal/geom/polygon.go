package geom

import (
	"fmt"
	"math"
)

// Polygon is a simple polygon given by its vertex ring (either
// orientation; no repeated closing vertex). A Polygon models the
// paper's contiguous region object: homogeneously 2-dimensional,
// connected, with connected boundary.
type Polygon []Point

// PointLocation classifies a point against a region.
type PointLocation int

// The three point-in-region outcomes.
const (
	PointOutside PointLocation = iota
	PointOnBoundary
	PointInside
)

func (l PointLocation) String() string {
	switch l {
	case PointOutside:
		return "outside"
	case PointOnBoundary:
		return "boundary"
	case PointInside:
		return "inside"
	}
	return fmt.Sprintf("geom.PointLocation(%d)", int(l))
}

// NumVertices returns the number of vertices.
func (pg Polygon) NumVertices() int { return len(pg) }

// Edge returns the i-th boundary segment.
func (pg Polygon) Edge(i int) Segment {
	return Segment{pg[i], pg[(i+1)%len(pg)]}
}

// SignedArea returns the polygon's signed area (positive when the ring
// is counter-clockwise).
func (pg Polygon) SignedArea() float64 {
	var s float64
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		s += p.Cross(q)
	}
	return s / 2
}

// Area returns the polygon's (unsigned) area.
func (pg Polygon) Area() float64 { return math.Abs(pg.SignedArea()) }

// Bounds returns the polygon's Minimum Bounding Rectangle. By
// construction the MBR is crisp: the polygon is fully contained and
// touches all four sides.
func (pg Polygon) Bounds() Rect {
	if len(pg) == 0 {
		return Rect{}
	}
	r := Rect{pg[0], pg[0]}
	for _, p := range pg[1:] {
		r.Min.X = min(r.Min.X, p.X)
		r.Min.Y = min(r.Min.Y, p.Y)
		r.Max.X = max(r.Max.X, p.X)
		r.Max.Y = max(r.Max.Y, p.Y)
	}
	return r
}

// Translate returns the polygon shifted by v.
func (pg Polygon) Translate(v Point) Polygon {
	out := make(Polygon, len(pg))
	for i, p := range pg {
		out[i] = p.Add(v)
	}
	return out
}

// ScaleAbout returns the polygon scaled by f about point c.
func (pg Polygon) ScaleAbout(c Point, f float64) Polygon {
	out := make(Polygon, len(pg))
	for i, p := range pg {
		out[i] = c.Add(p.Sub(c).Scale(f))
	}
	return out
}

// Reverse returns the polygon with opposite orientation.
func (pg Polygon) Reverse() Polygon {
	out := make(Polygon, len(pg))
	for i, p := range pg {
		out[len(pg)-1-i] = p
	}
	return out
}

// Rotate returns the polygon with the vertex ring rotated so that it
// starts at vertex k (the region is unchanged).
func (pg Polygon) Rotate(k int) Polygon {
	n := len(pg)
	out := make(Polygon, n)
	for i := range pg {
		out[i] = pg[(i+k)%n]
	}
	return out
}

// Validate checks that the polygon is a usable contiguous region: at
// least 3 vertices, non-zero area, no repeated consecutive vertices,
// and a simple (non-self-intersecting) boundary.
func (pg Polygon) Validate() error {
	if len(pg) < 3 {
		return fmt.Errorf("geom: polygon needs ≥3 vertices, has %d", len(pg))
	}
	for i := range pg {
		if pg[i].Eq(pg[(i+1)%len(pg)]) {
			return fmt.Errorf("geom: repeated consecutive vertex at %d", i)
		}
	}
	if pg.Area() <= Eps {
		return fmt.Errorf("geom: polygon has (near-)zero area")
	}
	if !pg.IsSimple() {
		return fmt.Errorf("geom: polygon boundary self-intersects")
	}
	return nil
}

// IsSimple reports whether no two non-adjacent edges intersect and
// adjacent edges share only their common vertex.
func (pg Polygon) IsSimple() bool {
	n := len(pg)
	for i := 0; i < n; i++ {
		ei := pg.Edge(i)
		for j := i + 1; j < n; j++ {
			ej := pg.Edge(j)
			pts, crosses := ei.Intersections(ej)
			if crosses {
				return false
			}
			adjacent := j == i+1 || (i == 0 && j == n-1)
			switch {
			case adjacent:
				// Adjacent edges must meet exactly at the shared vertex.
				if len(pts) > 1 {
					return false
				}
				if len(pts) == 1 {
					shared := pg[(i+1)%n]
					if i == 0 && j == n-1 {
						shared = pg[0]
					}
					if !pts[0].Eq(shared) {
						return false
					}
				}
			default:
				if len(pts) > 0 {
					return false
				}
			}
		}
	}
	return true
}

// LocatePoint classifies pt against the region: inside, on the
// boundary (within Eps), or outside.
func (pg Polygon) LocatePoint(pt Point) PointLocation {
	for i := range pg {
		if pg.Edge(i).DistToPoint(pt) <= Eps {
			return PointOnBoundary
		}
	}
	// Ray casting with the half-open edge rule.
	inside := false
	n := len(pg)
	for i := 0; i < n; i++ {
		a, b := pg[i], pg[(i+1)%n]
		if (a.Y > pt.Y) != (b.Y > pt.Y) {
			x := a.X + (pt.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if pt.X < x {
				inside = !inside
			}
		}
	}
	if inside {
		return PointInside
	}
	return PointOutside
}

// InteriorPoint returns a point strictly inside the region. It walks
// the vertices and tests points slightly inset along the angle
// bisector; for a valid simple polygon one of them is interior.
func (pg Polygon) InteriorPoint() (Point, bool) {
	// First try the centroid (works for convex and most star-shaped
	// polygons, which is what the generators produce).
	c := pg.centroid()
	if pg.LocatePoint(c) == PointInside {
		return c, true
	}
	// Fall back: midpoints of diagonals between vertex i and every
	// other vertex; for a simple polygon at least one diagonal midpoint
	// is interior.
	n := len(pg)
	for i := 0; i < n; i++ {
		for j := i + 2; j < n; j++ {
			m := Segment{pg[i], pg[j]}.Midpoint()
			if pg.LocatePoint(m) == PointInside {
				return m, true
			}
		}
	}
	return Point{}, false
}

func (pg Polygon) centroid() Point {
	var cx, cy, a float64
	n := len(pg)
	for i := 0; i < n; i++ {
		p, q := pg[i], pg[(i+1)%n]
		w := p.Cross(q)
		cx += (p.X + q.X) * w
		cy += (p.Y + q.Y) * w
		a += w
	}
	if a == 0 {
		return pg[0]
	}
	return Point{cx / (3 * a), cy / (3 * a)}
}
