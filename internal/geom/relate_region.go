package geom

import (
	"sort"

	"mbrtopo/internal/topo"
)

// RelateRegions computes the topological relation between two regions
// that may be non-contiguous (the paper's Section 7 extension). For
// simple polygons it agrees with Relate (property-tested); for
// multi-polygons it additionally handles the phenomena contiguous
// regions cannot exhibit:
//
//   - a region may surround a "hole" formed by its components, so
//     ∂P ⊆ Q no longer implies P ⊆ Q: the test also requires that no
//     boundary piece of Q lies strictly inside P, and that one interior
//     sample of every P component lies in Q (the three conditions
//     together are exact: if some component's interior both met and
//     escaped Q, Q's boundary would cross that component's interior);
//   - a component of P may coincide exactly with a component of Q
//     while other components differ, which boundary flags alone cannot
//     see; interior samples detect the shared interior.
func RelateRegions(P, Q Region) topo.Relation {
	pc := classifyRegionBoundary(P, Q)
	qc := classifyRegionBoundary(Q, P)
	bb := pc.on || qc.on || pc.touch || qc.touch

	pSamples, pok := P.InteriorSamples()
	qSamples, qok := Q.InteriorSamples()
	// Sample classification (strict interior / membership in closure).
	pSampleIn, pAllInQ := samplesAgainst(pSamples, Q)
	qSampleIn, qAllInP := samplesAgainst(qSamples, P)
	if !pok || !qok {
		// Degenerate inputs; fall back to boundary flags only.
		pAllInQ, qAllInP = !pc.out, !qc.out
	}

	pSubQ := !pc.out && !qc.in && pAllInQ
	qSubP := !qc.out && !pc.in && qAllInP

	switch {
	case pSubQ && qSubP:
		return topo.Equal
	case pSubQ:
		if bb {
			return topo.CoveredBy
		}
		return topo.Inside
	case qSubP:
		if bb {
			return topo.Covers
		}
		return topo.Contains
	case pc.in || qc.in || pSampleIn || qSampleIn:
		return topo.Overlap
	case bb:
		return topo.Meet
	default:
		return topo.Disjoint
	}
}

// samplesAgainst classifies component interior samples against a
// region: anyInside reports a sample strictly inside, allIn reports
// every sample in the closed region.
func samplesAgainst(samples []Point, R Region) (anyInside, allIn bool) {
	allIn = true
	for _, s := range samples {
		switch R.LocatePoint(s) {
		case PointInside:
			anyInside = true
		case PointOutside:
			allIn = false
		}
	}
	return anyInside, allIn
}

// classifyRegionBoundary splits each effective boundary segment of P
// at its intersections with ∂Q and classifies the piece midpoints
// against Q (the Region generalisation of classifyBoundary).
func classifyRegionBoundary(P, Q Region) boundaryClass {
	var c boundaryClass
	qb := Q.Bounds().Grow(Eps)
	qSegs := Q.BoundarySegments()
	for _, e := range P.BoundarySegments() {
		if !qb.Intersects(e.Bounds()) {
			c.out = true
			continue
		}
		ts := []float64{0, 1}
		for _, qe := range qSegs {
			pts, _ := e.Intersections(qe)
			if len(pts) > 0 {
				c.touch = true
			}
			for _, p := range pts {
				t := e.paramOf(p)
				if t > Eps && t < 1-Eps {
					ts = append(ts, t)
				}
			}
		}
		sort.Float64s(ts)
		for k := 0; k+1 < len(ts); k++ {
			t0, t1 := ts[k], ts[k+1]
			if t1-t0 <= 2*Eps {
				continue
			}
			switch Q.LocatePoint(e.At((t0 + t1) / 2)) {
			case PointInside:
				c.in = true
			case PointOnBoundary:
				c.on = true
			case PointOutside:
				c.out = true
			}
		}
	}
	return c
}
