package geom

import (
	"math"
	"testing"
)

func TestRectBasics(t *testing.T) {
	r := R(0, 0, 4, 2)
	if !r.Valid() || r.Area() != 8 || r.Width() != 4 || r.Height() != 2 || r.Margin() != 6 {
		t.Fatalf("rect basics broken: %v", r)
	}
	if r.Center() != (Point{2, 1}) {
		t.Fatalf("center: %v", r.Center())
	}
	if !R(0, 0, 1, 1).Valid() == false && R(1, 1, 1, 2).Valid() {
		t.Fatal("degenerate rect considered valid")
	}
	s := R(2, 1, 6, 5)
	if got := r.Union(s); got != R(0, 0, 6, 5) {
		t.Fatalf("union: %v", got)
	}
	if got, ok := r.Intersect(s); !ok || got != R(2, 1, 4, 2) {
		t.Fatalf("intersect: %v %v", got, ok)
	}
	if _, ok := r.Intersect(R(4, 0, 5, 2)); ok {
		t.Fatal("edge-sharing rects should have no interior intersection")
	}
	if !r.Intersects(R(4, 0, 5, 2)) {
		t.Fatal("edge-sharing rects do share points")
	}
	if r.IntersectsInterior(R(4, 0, 5, 2)) {
		t.Fatal("edge-sharing rects share no interior")
	}
	if !r.ContainsRect(R(1, 0, 2, 1)) || r.ContainsRect(R(1, 0, 5, 1)) {
		t.Fatal("ContainsRect broken")
	}
	if !r.ContainsPoint(Point{4, 2}) || r.ContainsPoint(Point{4.1, 2}) {
		t.Fatal("ContainsPoint broken")
	}
	if got := r.Enlarge(R(0, 0, 8, 2)); got != 8 {
		t.Fatalf("Enlarge: %v", got)
	}
	if got := r.OverlapArea(s); got != 2 {
		t.Fatalf("OverlapArea: %v", got)
	}
	if got := r.OverlapArea(R(10, 10, 11, 11)); got != 0 {
		t.Fatalf("OverlapArea disjoint: %v", got)
	}
	if got := r.Grow(1); got != R(-1, -1, 5, 3) {
		t.Fatalf("Grow: %v", got)
	}
	if got := r.Polygon().Area(); got != 8 {
		t.Fatalf("rect polygon area: %v", got)
	}
	if r.XInterval().Length() != 4 || r.YInterval().Length() != 2 {
		t.Fatal("projections broken")
	}
}

func TestSegmentPredicates(t *testing.T) {
	s := Segment{Point{0, 0}, Point{4, 0}}
	if s.Length() != 4 || s.Midpoint() != (Point{2, 0}) {
		t.Fatal("segment basics broken")
	}
	if d := s.DistToPoint(Point{2, 3}); d != 3 {
		t.Fatalf("DistToPoint: %v", d)
	}
	if d := s.DistToPoint(Point{-3, 4}); d != 5 {
		t.Fatalf("DistToPoint beyond endpoint: %v", d)
	}
	if !s.ContainsPoint(Point{1, 0}) || s.ContainsPoint(Point{1, 0.1}) {
		t.Fatal("ContainsPoint broken")
	}
}

func TestSegmentIntersections(t *testing.T) {
	cases := []struct {
		name    string
		s, u    Segment
		npts    int
		crosses bool
	}{
		{"disjoint", Segment{Point{0, 0}, Point{1, 0}}, Segment{Point{0, 1}, Point{1, 1}}, 0, false},
		{"proper cross", Segment{Point{0, 0}, Point{2, 2}}, Segment{Point{0, 2}, Point{2, 0}}, 1, true},
		{"T touch", Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{1, 0}, Point{1, 2}}, 1, false},
		{"endpoint touch", Segment{Point{0, 0}, Point{1, 1}}, Segment{Point{1, 1}, Point{2, 0}}, 1, false},
		{"collinear overlap", Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{1, 0}, Point{3, 0}}, 2, false},
		{"collinear disjoint", Segment{Point{0, 0}, Point{1, 0}}, Segment{Point{2, 0}, Point{3, 0}}, 0, false},
		{"collinear contained", Segment{Point{0, 0}, Point{4, 0}}, Segment{Point{1, 0}, Point{2, 0}}, 2, false},
		{"parallel", Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{0, 1}, Point{2, 1}}, 0, false},
	}
	for _, c := range cases {
		pts, crosses := c.s.Intersections(c.u)
		if len(pts) != c.npts || crosses != c.crosses {
			t.Errorf("%s: got %d pts (%v) crosses=%v, want %d crosses=%v",
				c.name, len(pts), pts, crosses, c.npts, c.crosses)
		}
		// Symmetry.
		pts2, crosses2 := c.u.Intersections(c.s)
		if len(pts2) != c.npts || crosses2 != c.crosses {
			t.Errorf("%s (swapped): got %d pts crosses=%v", c.name, len(pts2), crosses2)
		}
	}
	// The proper crossing point itself.
	pts, _ := Segment{Point{0, 0}, Point{2, 2}}.Intersections(Segment{Point{0, 2}, Point{2, 0}})
	if len(pts) != 1 || !pts[0].Eq(Point{1, 1}) {
		t.Fatalf("crossing point: %v", pts)
	}
}

func TestPolygonBasics(t *testing.T) {
	sq := R(0, 0, 2, 2).Polygon()
	if sq.Area() != 4 || sq.SignedArea() != 4 {
		t.Fatalf("square area: %v", sq.Area())
	}
	if rev := sq.Reverse(); rev.SignedArea() != -4 || rev.Area() != 4 {
		t.Fatal("Reverse broken")
	}
	if got := sq.Bounds(); got != R(0, 0, 2, 2) {
		t.Fatalf("Bounds: %v", got)
	}
	if got := sq.Translate(Point{1, 1}).Bounds(); got != R(1, 1, 3, 3) {
		t.Fatalf("Translate: %v", got)
	}
	if got := sq.ScaleAbout(Point{1, 1}, 0.5).Bounds(); got != R(0.5, 0.5, 1.5, 1.5) {
		t.Fatalf("ScaleAbout: %v", got)
	}
	if got := sq.Rotate(2); got.Area() != 4 || got[0] != sq[2] {
		t.Fatal("Rotate broken")
	}
	if err := sq.Validate(); err != nil {
		t.Fatalf("square should validate: %v", err)
	}
	if err := (Polygon{{0, 0}, {1, 0}}).Validate(); err == nil {
		t.Fatal("2-gon should not validate")
	}
	bowtie := Polygon{{0, 0}, {2, 2}, {2, 0}, {0, 2}}
	if bowtie.IsSimple() {
		t.Fatal("bowtie should not be simple")
	}
	if err := bowtie.Validate(); err == nil {
		t.Fatal("bowtie should not validate")
	}
	if err := (Polygon{{0, 0}, {0, 0}, {1, 0}, {1, 1}}).Validate(); err == nil {
		t.Fatal("repeated vertex should not validate")
	}
}

func TestLocatePoint(t *testing.T) {
	// Concave L-shape.
	L := Polygon{{0, 0}, {3, 0}, {3, 1}, {1, 1}, {1, 3}, {0, 3}}
	if err := L.Validate(); err != nil {
		t.Fatalf("L should validate: %v", err)
	}
	cases := []struct {
		p    Point
		want PointLocation
	}{
		{Point{0.5, 0.5}, PointInside},
		{Point{2, 0.5}, PointInside},
		{Point{0.5, 2}, PointInside},
		{Point{2, 2}, PointOutside},
		{Point{-1, 1}, PointOutside},
		{Point{1, 1}, PointOnBoundary},
		{Point{1.5, 1}, PointOnBoundary},
		{Point{0, 0}, PointOnBoundary},
		{Point{3, 0.5}, PointOnBoundary},
		{Point{1, 2}, PointOnBoundary},
	}
	for _, c := range cases {
		if got := L.LocatePoint(c.p); got != c.want {
			t.Errorf("LocatePoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Orientation must not matter.
	for _, c := range cases {
		if got := L.Reverse().LocatePoint(c.p); got != c.want {
			t.Errorf("reversed LocatePoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestInteriorPoint(t *testing.T) {
	shapes := []Polygon{
		R(0, 0, 1, 1).Polygon(),
		{{0, 0}, {3, 0}, {3, 1}, {1, 1}, {1, 3}, {0, 3}}, // L
		{{0, 0}, {4, 0}, {4, 4}, {2, 1}, {0, 4}},         // concave "M"
	}
	for i, pg := range shapes {
		p, ok := pg.InteriorPoint()
		if !ok || pg.LocatePoint(p) != PointInside {
			t.Errorf("shape %d: InteriorPoint = %v ok=%v loc=%v", i, p, ok, pg.LocatePoint(p))
		}
	}
}

func TestPointOps(t *testing.T) {
	p, q := Point{1, 2}, Point{3, 5}
	if p.Add(q) != (Point{4, 7}) || q.Sub(p) != (Point{2, 3}) || p.Scale(2) != (Point{2, 4}) {
		t.Fatal("point arithmetic broken")
	}
	if p.Dot(q) != 13 || p.Cross(q) != -1 {
		t.Fatal("products broken")
	}
	if math.Abs(p.Dist(q)-math.Sqrt(13)) > 1e-15 {
		t.Fatal("Dist broken")
	}
	if !p.Eq(Point{1 + 1e-12, 2}) || p.Eq(Point{1.1, 2}) {
		t.Fatal("Eq broken")
	}
}
