package geom

import (
	"fmt"
	"math"

	"mbrtopo/internal/interval"
)

// Rect is an axis-aligned rectangle, the Minimum Bounding Rectangle
// representation the paper studies: "each object q is represented as an
// ordered pair (q_l, q_u) of points that correspond to the lower left
// and the upper right point of the MBR".
type Rect struct {
	Min, Max Point
}

// R is shorthand for constructing a Rect from coordinates.
func R(minX, minY, maxX, maxY float64) Rect {
	return Rect{Point{minX, minY}, Point{maxX, maxY}}
}

// Valid reports whether the rectangle is non-degenerate in both axes
// (the paper's constraint X(p_l) < X(p_u) ∧ Y(p_l) < Y(p_u)).
func (r Rect) Valid() bool {
	return r.Min.X < r.Max.X && r.Min.Y < r.Max.Y
}

// XInterval returns the projection of the rectangle on the x axis.
func (r Rect) XInterval() interval.Interval { return interval.Interval{Lo: r.Min.X, Hi: r.Max.X} }

// YInterval returns the projection of the rectangle on the y axis.
func (r Rect) YInterval() interval.Interval { return interval.Interval{Lo: r.Min.Y, Hi: r.Max.Y} }

// Width returns the extent along x.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the extent along y.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Margin returns half the perimeter (the R*-tree's margin measure).
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{min(r.Min.X, s.Min.X), min(r.Min.Y, s.Min.Y)},
		Max: Point{max(r.Max.X, s.Max.X), max(r.Max.Y, s.Max.Y)},
	}
}

// Intersect returns the common rectangle of r and s and whether it is
// non-degenerate (shares interior). A rectangle that only shares an
// edge or corner yields ok=false.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		Min: Point{max(r.Min.X, s.Min.X), max(r.Min.Y, s.Min.Y)},
		Max: Point{min(r.Max.X, s.Max.X), min(r.Max.Y, s.Max.Y)},
	}
	return out, out.Valid()
}

// Intersects reports whether the closed rectangles share at least one
// point (the traditional not_disjoint test of spatial access methods).
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// IntersectsInterior reports whether the rectangles share interior
// points.
func (r Rect) IntersectsInterior(s Rect) bool {
	return r.Min.X < s.Max.X && s.Min.X < r.Max.X &&
		r.Min.Y < s.Max.Y && s.Min.Y < r.Max.Y
}

// ContainsRect reports whether s ⊆ r (closed containment).
func (r Rect) ContainsRect(s Rect) bool {
	return r.Min.X <= s.Min.X && s.Max.X <= r.Max.X &&
		r.Min.Y <= s.Min.Y && s.Max.Y <= r.Max.Y
}

// ContainsPoint reports whether p lies in the closed rectangle.
func (r Rect) ContainsPoint(p Point) bool {
	return r.Min.X <= p.X && p.X <= r.Max.X && r.Min.Y <= p.Y && p.Y <= r.Max.Y
}

// Enlarge returns the area increase needed for r to cover s.
func (r Rect) Enlarge(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// OverlapArea returns the area shared by the two rectangles.
func (r Rect) OverlapArea(s Rect) float64 {
	w := min(r.Max.X, s.Max.X) - max(r.Min.X, s.Min.X)
	if w <= 0 {
		return 0
	}
	h := min(r.Max.Y, s.Max.Y) - max(r.Min.Y, s.Min.Y)
	if h <= 0 {
		return 0
	}
	return w * h
}

// DistToPoint returns the Euclidean distance from p to the closed
// rectangle (the kNN MINDIST measure); zero when p lies inside.
func (r Rect) DistToPoint(p Point) float64 {
	dx := max(r.Min.X-p.X, 0, p.X-r.Max.X)
	dy := max(r.Min.Y-p.Y, 0, p.Y-r.Max.Y)
	return math.Hypot(dx, dy)
}

// Grow returns the rectangle expanded by d on every side.
func (r Rect) Grow(d float64) Rect {
	return Rect{Point{r.Min.X - d, r.Min.Y - d}, Point{r.Max.X + d, r.Max.Y + d}}
}

// Polygon returns the rectangle as a counter-clockwise simple polygon.
func (r Rect) Polygon() Polygon {
	return Polygon{
		{r.Min.X, r.Min.Y},
		{r.Max.X, r.Min.Y},
		{r.Max.X, r.Max.Y},
		{r.Min.X, r.Max.Y},
	}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%g %g; %g %g]", r.Min.X, r.Min.Y, r.Max.X, r.Max.Y)
}
