package geom

import (
	"math/rand"
	"testing"

	"mbrtopo/internal/topo"
)

// TestRelateRegionsAgreesWithRelate: on simple polygons the Region
// path must agree with the specialised polygon path, across all
// fixtures and the rectangle-pair oracle.
func TestRelateRegionsAgreesWithRelate(t *testing.T) {
	for _, c := range relateFixtures() {
		if got, want := RelateRegions(c.p, c.q), Relate(c.p, c.q); got != want {
			t.Errorf("%s: RelateRegions = %v, Relate = %v", c.name, got, want)
		}
	}
	rects := gridRects(4)
	for _, a := range rects {
		for _, b := range rects {
			if got, want := RelateRegions(a.Polygon(), b.Polygon()), relateRectsDirect(a, b); got != want {
				t.Fatalf("RelateRegions(%v,%v) = %v, oracle %v", a, b, got, want)
			}
		}
	}
}

// ring4 builds a square ring out of four rectangles around the hole
// [2,4]×[2,4], as a MultiPolygon (outer bounds [1,1]–[5,5]).
func ring4() MultiPolygon {
	return MultiPolygon{
		R(1, 1, 5, 2).Polygon(), // bottom
		R(1, 4, 5, 5).Polygon(), // top
		R(1, 2, 2, 4).Polygon(), // left
		R(4, 2, 5, 4).Polygon(), // right
	}
}

func TestMultiPolygonBasics(t *testing.T) {
	ring := ring4()
	if err := ring.Validate(); err != nil {
		t.Fatalf("ring should validate: %v", err)
	}
	if got := ring.Bounds(); got != R(1, 1, 5, 5) {
		t.Fatalf("bounds: %v", got)
	}
	if got := ring.Area(); got != 12 {
		t.Fatalf("area: %v", got)
	}
	if got := ring.LocatePoint(Point{3, 3}); got != PointOutside {
		t.Fatalf("hole center should be outside the ring, got %v", got)
	}
	if got := ring.LocatePoint(Point{1.5, 1.5}); got != PointInside {
		t.Fatalf("bottom bar interior: %v", got)
	}
	if got := ring.LocatePoint(Point{2, 3}); got != PointOnBoundary {
		t.Fatalf("inner wall: %v", got)
	}
	// A point on the seam between the bottom bar and the left wall is
	// interior to the union.
	if got := ring.LocatePoint(Point{1.5, 2}); got != PointInside {
		t.Fatalf("seam point should be interior to the union, got %v", got)
	}
	samples, ok := ring.InteriorSamples()
	if !ok || len(samples) != 4 {
		t.Fatalf("samples: %v %v", samples, ok)
	}
	for _, s := range samples {
		if ring.LocatePoint(s) != PointInside {
			t.Fatalf("sample %v not interior", s)
		}
	}
	// The effective boundary dissolves the three seams... the ring has
	// four seams (one per corner junction); every dissolved piece must
	// be strictly interior to the union, and every kept piece on the
	// true union boundary.
	for _, seg := range ring.BoundarySegments() {
		if got := ring.LocatePoint(seg.Midpoint()); got != PointOnBoundary {
			t.Fatalf("kept boundary piece %v has midpoint %v", seg, got)
		}
	}
	// Overlapping components must not validate.
	bad := MultiPolygon{R(0, 0, 2, 2).Polygon(), R(1, 1, 3, 3).Polygon()}
	if err := bad.Validate(); err == nil {
		t.Fatal("overlapping components validated")
	}
	if err := (MultiPolygon{}).Validate(); err == nil {
		t.Fatal("empty multipolygon validated")
	}
	if got := ring.Translate(Point{10, 0}).Bounds(); got != R(11, 1, 15, 5) {
		t.Fatalf("translate: %v", got)
	}
}

// TestRelateRegionsHoleCases: the configurations that distinguish
// non-contiguous regions from contiguous ones.
func TestRelateRegionsHoleCases(t *testing.T) {
	ring := ring4()
	cases := []struct {
		name string
		p, q Region
		want topo.Relation
	}{
		// A block floating in the ring's hole without contact.
		{"island in hole", R(2.5, 2.5, 3.5, 3.5).Polygon(), ring, topo.Disjoint},
		// A block filling the hole exactly: touches all inner walls but
		// shares no interior — meet, despite ∂P ⊆ Q.
		{"block fills hole", R(2, 2, 4, 4).Polygon(), ring, topo.Meet},
		// A block covering the hole and half the ring: overlap.
		{"block over hole and ring", R(1.5, 1.5, 4.5, 4.5).Polygon(), ring, topo.Overlap},
		// The ring inside a larger region.
		{"ring inside big region", ring, R(0, 0, 6, 6).Polygon(), topo.Inside},
		// The ring covered by a region sharing its outer boundary.
		{"ring covered by square", ring, R(1, 1, 5, 5).Polygon(), topo.CoveredBy},
		// Identical multi regions with different component order.
		{"equal rings", ring, MultiPolygon{ring[2], ring[0], ring[3], ring[1]}, topo.Equal},
		// Same set, one side expressed as a single polygon ring walk is
		// impossible for a square ring; instead: two-component region
		// equal to the union of two rectangles given as one component
		// each in different cuts.
		{"equal across different cuts",
			MultiPolygon{R(0, 0, 2, 1).Polygon(), R(0, 1, 2, 2).Polygon()},
			MultiPolygon{R(0, 0, 1, 2).Polygon(), R(1, 0, 2, 2).Polygon()},
			topo.Equal},
		// One shared component plus an extra: covered_by.
		{"component subset",
			MultiPolygon{R(0, 0, 1, 1).Polygon()},
			MultiPolygon{R(0, 0, 1, 1).Polygon(), R(5, 5, 6, 6).Polygon()},
			topo.CoveredBy},
		// Shared component with disjoint extras on both sides: overlap.
		{"shared component, extras",
			MultiPolygon{R(0, 0, 1, 1).Polygon(), R(10, 0, 11, 1).Polygon()},
			MultiPolygon{R(0, 0, 1, 1).Polygon(), R(20, 0, 21, 1).Polygon()},
			topo.Overlap},
		// Two islands of P inside one component of Q.
		{"archipelago inside",
			MultiPolygon{R(1, 1, 2, 2).Polygon(), R(3, 3, 4, 4).Polygon()},
			R(0, 0, 5, 5).Polygon(),
			topo.Inside},
		// Two islands, one touching the host's border.
		{"archipelago covered_by",
			MultiPolygon{R(0, 1, 2, 2).Polygon(), R(3, 3, 4, 4).Polygon()},
			R(0, 0, 5, 5).Polygon(),
			topo.CoveredBy},
		// Host contains one island, other island outside: overlap.
		{"partially escaped archipelago",
			MultiPolygon{R(1, 1, 2, 2).Polygon(), R(9, 9, 10, 10).Polygon()},
			R(0, 0, 5, 5).Polygon(),
			topo.Overlap},
		// Components meeting the host's boundary from outside.
		{"islands meeting host",
			MultiPolygon{R(5, 0, 6, 1).Polygon(), R(5, 3, 6, 4).Polygon()},
			R(0, 0, 5, 5).Polygon(),
			topo.Meet},
	}
	for _, c := range cases {
		if got := RelateRegions(c.p, c.q); got != c.want {
			t.Errorf("%s: RelateRegions = %v, want %v", c.name, got, c.want)
		}
		if got := RelateRegions(c.q, c.p); got != c.want.Converse() {
			t.Errorf("%s (swapped): %v, want %v", c.name, got, c.want.Converse())
		}
	}
}

// TestRelateRegionsConverseProperty on random multi-part regions.
func TestRelateRegionsConverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	randMulti := func() MultiPolygon {
		n := 1 + rng.Intn(3)
		var mp MultiPolygon
		for len(mp) < n {
			c := Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
			cand := randomStar(rng, c, 0.5+rng.Float64()*2, 4+rng.Intn(6))
			if cand.Validate() != nil {
				continue
			}
			ok := true
			for _, prev := range mp {
				if r := RelateRegions(cand, prev); r != topo.Disjoint && r != topo.Meet {
					ok = false
					break
				}
			}
			if ok {
				mp = append(mp, cand)
			}
		}
		return mp
	}
	seen := map[topo.Relation]int{}
	for i := 0; i < 150; i++ {
		p, q := randMulti(), randMulti()
		if p.Validate() != nil || q.Validate() != nil {
			continue
		}
		r1, r2 := RelateRegions(p, q), RelateRegions(q, p)
		if r1.Converse() != r2 {
			t.Fatalf("iter %d: %v vs %v", i, r1, r2)
		}
		if self := RelateRegions(p, p); self != topo.Equal {
			t.Fatalf("iter %d: self-relation %v", i, self)
		}
		seen[r1]++
	}
	if seen[topo.Disjoint] == 0 || seen[topo.Overlap] == 0 {
		t.Fatalf("poor relation coverage: %v", seen)
	}
}
