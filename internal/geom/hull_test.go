package geom

import (
	"math/rand"
	"testing"

	"mbrtopo/internal/topo"
)

func TestConvexHullBasics(t *testing.T) {
	// A square with an interior point and a duplicate vertex.
	pts := []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {0, 0}}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull has %d vertices: %v", len(hull), hull)
	}
	if !hull.IsConvex() {
		t.Fatal("hull not convex")
	}
	if hull.SignedArea() <= 0 {
		t.Fatal("hull not counter-clockwise")
	}
	if hull.Area() != 16 {
		t.Fatalf("hull area %v", hull.Area())
	}
	// Degenerate inputs.
	if got := ConvexHull([]Point{{1, 1}}); len(got) != 1 {
		t.Fatalf("single point hull: %v", got)
	}
	if got := ConvexHull([]Point{{0, 0}, {1, 1}, {0, 0}}); len(got) != 2 {
		t.Fatalf("two point hull: %v", got)
	}
}

// TestConvexHullContainsAllPoints: random point clouds.
func TestConvexHullContainsAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(30)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			continue
		}
		if err := hull.Validate(); err != nil {
			t.Fatalf("hull invalid: %v", err)
		}
		if !hull.IsConvex() {
			t.Fatal("hull not convex")
		}
		for _, p := range pts {
			if hull.LocatePoint(p) == PointOutside {
				t.Fatalf("hull misses point %v", p)
			}
		}
	}
}

// TestHullOfRegion: the hull of a region contains the region and is
// crisp (same MBR).
func TestHullOfRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	shapes := []Region{
		randomStar(rng, Point{5, 5}, 4, 9),
		Polygon{{0, 0}, {6, 0}, {6, 1}, {1, 1}, {1, 6}, {0, 6}}, // L
		ring4(),
		MultiPolygon{R(0, 0, 1, 1).Polygon(), R(5, 5, 6, 6).Polygon()},
	}
	for i, rg := range shapes {
		hull := HullOf(rg)
		if err := hull.Validate(); err != nil {
			t.Fatalf("shape %d: hull invalid: %v", i, err)
		}
		if hull.Bounds() != rg.Bounds() {
			t.Fatalf("shape %d: hull MBR %v != region MBR %v", i, hull.Bounds(), rg.Bounds())
		}
		rel := RelateRegions(rg, hull)
		if rel != topo.Equal && rel != topo.CoveredBy && rel != topo.Inside {
			t.Fatalf("shape %d: region not inside its hull: %v", i, rel)
		}
	}
}

// TestPossibleGivenHullsSound: for random region pairs, the actual
// relation is always admitted by the hull-level table.
func TestPossibleGivenHullsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	resolved := 0
	for trial := 0; trial < 600; trial++ {
		p := randomStar(rng, Point{rng.Float64() * 12, rng.Float64() * 12}, 1+rng.Float64()*4, 5+rng.Intn(6))
		q := randomStar(rng, Point{rng.Float64() * 12, rng.Float64() * 12}, 1+rng.Float64()*4, 5+rng.Intn(6))
		if p.Validate() != nil || q.Validate() != nil {
			continue
		}
		h := Relate(HullOf(p), HullOf(q))
		poss := PossibleGivenHulls(h)
		actual := Relate(p, q)
		if !poss.Has(actual) {
			t.Fatalf("hull relation %v admits %v but actual is %v", h, poss, actual)
		}
		if poss.Len() == 1 {
			resolved++
		}
	}
	if resolved == 0 {
		t.Fatal("hull table never resolved a pair; check the disjoint rule")
	}
}

// TestPossibleGivenHullsTable pins the derived rows.
func TestPossibleGivenHullsTable(t *testing.T) {
	if got := PossibleGivenHulls(topo.Disjoint); got != topo.NewSet(topo.Disjoint) {
		t.Errorf("disjoint row: %v", got)
	}
	if got := PossibleGivenHulls(topo.Meet); got != topo.NewSet(topo.Disjoint, topo.Meet) {
		t.Errorf("meet row: %v", got)
	}
	if got := PossibleGivenHulls(topo.Overlap); got != topo.NewSet(topo.Disjoint, topo.Meet, topo.Overlap) {
		t.Errorf("overlap row: %v", got)
	}
	if got := PossibleGivenHulls(topo.Contains); got.Has(topo.Equal) || got.Has(topo.Inside) || !got.Has(topo.Covers) {
		t.Errorf("contains row: %v", got)
	}
	if got := PossibleGivenHulls(topo.Equal); got != topo.FullSet() {
		t.Errorf("equal row: %v", got)
	}
}
