package geom

import (
	"sort"

	"mbrtopo/internal/topo"
)

// Relate computes the exact 9-intersection topological relation of the
// primary region P with respect to the reference region Q. Both must
// be valid simple polygons (contiguous regions); Relate is the
// refinement step of the paper's 4-step retrieval strategy.
//
// Method: split every boundary edge of P at its intersections with ∂Q
// and classify each resulting piece as inside, on, or outside Q (and
// symmetrically for Q against P). The flags determine the relation:
//
//	no piece of ∂P strictly outside Q  ⇔  P ⊆ Q
//	a piece of ∂P strictly inside Q    ⇒  the interiors intersect
//	any shared boundary point          ⇔  ∂P ∩ ∂Q ≠ ∅
//
// For simple polygons these conditions pin down exactly one of the
// eight mt2 relations.
func Relate(P, Q Polygon) topo.Relation {
	pc := classifyBoundary(P, Q)
	qc := classifyBoundary(Q, P)
	bb := pc.on || qc.on || pc.touch || qc.touch

	switch {
	case !pc.out && !qc.out && !pc.in && !qc.in:
		return topo.Equal
	case !pc.out: // P ⊆ Q
		if bb {
			return topo.CoveredBy
		}
		return topo.Inside
	case !qc.out: // Q ⊆ P
		if bb {
			return topo.Covers
		}
		return topo.Contains
	case pc.in || qc.in:
		return topo.Overlap
	case bb:
		return topo.Meet
	default:
		return topo.Disjoint
	}
}

// RelateMatrix returns the 9-intersection matrix corresponding to
// Relate(P, Q).
func RelateMatrix(P, Q Polygon) topo.Matrix {
	return Relate(P, Q).Matrix()
}

// boundaryClass aggregates how the boundary of one region lies with
// respect to the other region.
type boundaryClass struct {
	out   bool // some boundary piece strictly outside the other region
	in    bool // some boundary piece strictly inside
	on    bool // some boundary piece along the other region's boundary
	touch bool // the boundaries share at least one point
}

// classifyBoundary splits each edge of P at its intersections with ∂Q
// and classifies the piece midpoints against Q.
func classifyBoundary(P, Q Polygon) boundaryClass {
	var c boundaryClass
	qb := Q.Bounds().Grow(Eps)
	for i := range P {
		e := P.Edge(i)
		if !qb.Intersects(e.Bounds()) {
			// Fast path: the whole edge is outside Q's bounding box.
			c.out = true
			continue
		}
		ts := []float64{0, 1}
		for j := range Q {
			pts, _ := e.Intersections(Q.Edge(j))
			if len(pts) > 0 {
				c.touch = true
			}
			for _, p := range pts {
				t := e.paramOf(p)
				if t > Eps && t < 1-Eps {
					ts = append(ts, t)
				}
			}
		}
		sort.Float64s(ts)
		for k := 0; k+1 < len(ts); k++ {
			t0, t1 := ts[k], ts[k+1]
			if t1-t0 <= 2*Eps {
				continue
			}
			switch Q.LocatePoint(e.At((t0 + t1) / 2)) {
			case PointInside:
				c.in = true
			case PointOnBoundary:
				c.on = true
			case PointOutside:
				c.out = true
			}
		}
	}
	return c
}
