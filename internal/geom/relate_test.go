package geom

import (
	"math"
	"math/rand"
	"testing"

	"mbrtopo/internal/topo"
)

// fixtures returns named polygon pairs with their expected relation.
// Each of the eight mt2 relations appears in several geometric guises
// (edge contact, point contact, concave shapes, identical regions with
// different vertex rings).
func relateFixtures() []struct {
	name string
	p, q Polygon
	want topo.Relation
} {
	sq := R(0, 0, 4, 4).Polygon()       // reference square
	inner := R(1, 1, 2, 2).Polygon()    // strictly inside sq
	edgeIn := R(0, 1, 2, 3).Polygon()   // inside sq, shares part of left edge
	cornerIn := R(0, 0, 2, 2).Polygon() // inside sq, shares corner edges
	tri := Polygon{{1, 1}, {3, 1}, {2, 3}}
	L := Polygon{{0, 0}, {3, 0}, {3, 1}, {1, 1}, {1, 3}, {0, 3}}

	return []struct {
		name string
		p, q Polygon
		want topo.Relation
	}{
		{"squares far apart", sq, sq.Translate(Point{10, 0}), topo.Disjoint},
		{"diagonal separation", tri, tri.Translate(Point{5, 5}), topo.Disjoint},
		{"L and square in notch, apart", L.Translate(Point{0.5, 0}), R(2, 2, 2.9, 2.9).Polygon(), topo.Disjoint},

		{"edge contact", sq, sq.Translate(Point{4, 0}), topo.Meet},
		{"corner contact", sq, sq.Translate(Point{4, 4}), topo.Meet},
		{"partial edge contact", sq, R(4, 1, 6, 3).Polygon(), topo.Meet},
		{"triangle tip on edge", Polygon{{4, 2}, {6, 1}, {6, 3}}, sq, topo.Meet},
		{"square in L notch", Polygon{{1, 1}, {3, 1}, {3, 3}, {1, 3}}, L, topo.Meet},

		{"identical rings", sq, R(0, 0, 4, 4).Polygon(), topo.Equal},
		{"same region, rotated ring", sq, sq.Rotate(2), topo.Equal},
		{"same region, reversed ring", sq, sq.Reverse(), topo.Equal},
		{"same region, split edge", sq, Polygon{{0, 0}, {2, 0}, {4, 0}, {4, 4}, {0, 4}}, topo.Equal},

		{"classic partial overlap", sq, sq.Translate(Point{2, 2}), topo.Overlap},
		{"cross bars", R(0, 1, 6, 2).Polygon(), R(2, -1, 3, 4).Polygon(), topo.Overlap},
		{"triangle through edge", Polygon{{3, 1}, {6, 1}, {6, 3}}, sq, topo.Overlap},
		{"overlap with aligned MBRs", Polygon{{0, 0}, {4, 0}, {0, 4}}, Polygon{{4, 4}, {0, 4}, {1, 1}, {4, 0}}, topo.Overlap},

		{"strict containment", sq, inner, topo.Contains},
		{"contains triangle", sq, tri, topo.Contains},
		{"covers via edge", sq, edgeIn, topo.Covers},
		{"covers via corner", sq, cornerIn, topo.Covers},
		{"covers touching one point", sq, Polygon{{0, 2}, {2, 1}, {2, 3}}, topo.Covers},

		{"strictly inside", inner, sq, topo.Inside},
		{"inside concave host", R(0.2, 0.2, 0.8, 0.8).Polygon(), L, topo.Inside},
		{"covered_by via edge", edgeIn, sq, topo.CoveredBy},
		{"covered_by via corner", cornerIn, sq, topo.CoveredBy},
		{"covered_by touching one point", Polygon{{0, 2}, {2, 1}, {2, 3}}, sq, topo.CoveredBy},

		{"two triangles forming a square", Polygon{{0, 0}, {4, 0}, {4, 4}}, Polygon{{0, 0}, {4, 4}, {0, 4}}, topo.Meet},
	}
}

func TestRelateFixtures(t *testing.T) {
	for _, c := range relateFixtures() {
		if err := c.p.Validate(); err != nil {
			t.Fatalf("%s: bad fixture p: %v", c.name, err)
		}
		if err := c.q.Validate(); err != nil {
			t.Fatalf("%s: bad fixture q: %v", c.name, err)
		}
		if got := Relate(c.p, c.q); got != c.want {
			t.Errorf("%s: Relate = %v, want %v", c.name, got, c.want)
		}
		// Converse coherence.
		if got := Relate(c.q, c.p); got != c.want.Converse() {
			t.Errorf("%s (swapped): Relate = %v, want %v", c.name, got, c.want.Converse())
		}
		if got := RelateMatrix(c.p, c.q); got != c.want.Matrix() {
			t.Errorf("%s: matrix %v, want %v", c.name, got, c.want.Matrix())
		}
	}
}

// TestRelateInvariantUnderRingRepresentation: the relation must not
// depend on vertex order, ring orientation or collinear vertex
// insertion.
func TestRelateInvariantUnderRingRepresentation(t *testing.T) {
	for _, c := range relateFixtures() {
		want := Relate(c.p, c.q)
		for k := 1; k < len(c.p); k++ {
			if got := Relate(c.p.Rotate(k), c.q); got != want {
				t.Errorf("%s: rotated ring changed relation: %v vs %v", c.name, got, want)
			}
		}
		if got := Relate(c.p.Reverse(), c.q.Reverse()); got != want {
			t.Errorf("%s: reversed rings changed relation: %v vs %v", c.name, got, want)
		}
	}
}

// gridRects enumerates rectangles with integer corners in [0,n]×[0,n].
func gridRects(n int) []Rect {
	var out []Rect
	for x0 := 0; x0 < n; x0++ {
		for x1 := x0 + 1; x1 <= n; x1++ {
			for y0 := 0; y0 < n; y0++ {
				for y1 := y0 + 1; y1 <= n; y1++ {
					out = append(out, R(float64(x0), float64(y0), float64(x1), float64(y1)))
				}
			}
		}
	}
	return out
}

// relateRectsDirect computes the relation between two rectangles seen
// as regions, straight from the interval definitions — an independent
// oracle for Relate on rectangle polygons.
func relateRectsDirect(p, q Rect) topo.Relation {
	type side int
	cmp := func(a, b float64) side {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	// Disjoint / meet on closed boxes.
	if !p.Intersects(q) {
		return topo.Disjoint
	}
	if !p.IntersectsInterior(q) {
		return topo.Meet
	}
	eq := p.Min == q.Min && p.Max == q.Max
	if eq {
		return topo.Equal
	}
	if p.ContainsRect(q) {
		if cmp(p.Min.X, q.Min.X) < 0 && cmp(p.Max.X, q.Max.X) > 0 &&
			cmp(p.Min.Y, q.Min.Y) < 0 && cmp(p.Max.Y, q.Max.Y) > 0 {
			return topo.Contains
		}
		return topo.Covers
	}
	if q.ContainsRect(p) {
		if cmp(q.Min.X, p.Min.X) < 0 && cmp(q.Max.X, p.Max.X) > 0 &&
			cmp(q.Min.Y, p.Min.Y) < 0 && cmp(q.Max.Y, p.Max.Y) > 0 {
			return topo.Inside
		}
		return topo.CoveredBy
	}
	return topo.Overlap
}

// TestRelateAgainstRectangleOracle checks Relate exhaustively against
// the rectangle oracle over thousands of rectangle pairs, covering all
// eight relations in every touching configuration the grid affords.
func TestRelateAgainstRectangleOracle(t *testing.T) {
	rects := gridRects(4)
	seen := map[topo.Relation]int{}
	for _, a := range rects {
		for _, b := range rects {
			want := relateRectsDirect(a, b)
			if got := Relate(a.Polygon(), b.Polygon()); got != want {
				t.Fatalf("Relate(%v,%v) = %v, oracle %v", a, b, got, want)
			}
			seen[want]++
		}
	}
	if len(seen) != topo.NumRelations {
		t.Fatalf("grid only realised %d relations: %v", len(seen), seen)
	}
}

// randomStar returns a random star-shaped simple polygon within the
// given bounds (its MBR is crisp by construction of Bounds).
func randomStar(rng *rand.Rand, c Point, rMax float64, n int) Polygon {
	pg := make(Polygon, n)
	for i := 0; i < n; i++ {
		ang := (float64(i) + 0.2 + 0.6*rng.Float64()) / float64(n) * 2 * math.Pi
		rad := rMax * (0.3 + 0.7*rng.Float64())
		pg[i] = Point{c.X + rad*math.Cos(ang), c.Y + rad*math.Sin(ang)}
	}
	return pg
}

// TestRelateConverseProperty: on random star polygons, Relate(p,q) must
// equal the converse of Relate(q,p); and self-relation is equal.
func TestRelateConverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 400; i++ {
		p := randomStar(rng, Point{rng.Float64() * 10, rng.Float64() * 10}, 1+rng.Float64()*4, 5+rng.Intn(8))
		q := randomStar(rng, Point{rng.Float64() * 10, rng.Float64() * 10}, 1+rng.Float64()*4, 5+rng.Intn(8))
		if p.Validate() != nil || q.Validate() != nil {
			continue
		}
		r1, r2 := Relate(p, q), Relate(q, p)
		if r1.Converse() != r2 {
			t.Fatalf("iter %d: Relate(p,q)=%v but Relate(q,p)=%v", i, r1, r2)
		}
		if self := Relate(p, p); self != topo.Equal {
			t.Fatalf("iter %d: Relate(p,p)=%v", i, self)
		}
	}
}

// TestCompositionSoundExhaustive validates the topo composition table
// against real geometry: for every triple of grid rectangles,
// rel(a,c) ∈ Compose(rel(a,b), rel(b,c)); and it checks that the grid
// witnesses every member of every composition entry (completeness of
// the table cannot be witnessed, but full coverage plus the algebraic
// checks in package topo pin the table down).
func TestCompositionSoundExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("composition triple enumeration is slow")
	}
	// A 6-unit grid is the smallest that witnesses three-deep strict
	// nesting (inside ∘ inside). Precompute the pairwise relations so
	// the 85M-triple loop is pure table lookups.
	rects := gridRects(6)
	n := len(rects)
	rel := make([][]topo.Relation, n)
	for i := range rects {
		rel[i] = make([]topo.Relation, n)
		for j := range rects {
			rel[i][j] = relateRectsDirect(rects[i], rects[j])
		}
	}
	var witnessed [topo.NumRelations][topo.NumRelations]topo.Set
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			rab := rel[a][b]
			for c := 0; c < n; c++ {
				rac := rel[a][c]
				if !topo.Compose(rab, rel[b][c]).Has(rac) {
					t.Fatalf("composition unsound: %v∘%v must allow %v (a=%v b=%v c=%v)",
						rab, rel[b][c], rac, rects[a], rects[b], rects[c])
				}
				witnessed[rab][rel[b][c]] = witnessed[rab][rel[b][c]].Add(rac)
			}
		}
	}
	for _, r1 := range topo.All() {
		for _, r2 := range topo.All() {
			if missing := topo.Compose(r1, r2).Minus(witnessed[r1][r2]); !missing.IsEmpty() {
				t.Errorf("%v∘%v: members %v never witnessed by grid rectangles", r1, r2, missing)
			}
		}
	}
}
