package geom

import (
	"sort"

	"mbrtopo/internal/topo"
)

// This file implements convex hulls and the hull-level relation
// reasoning behind the multi-step query processing of Brinkhoff,
// Kriegel, Schneider and Seeger (1994), which the paper cites as the
// refinement-reducing extension of the basic filter/refine strategy:
// between the MBR filter and the exact geometry test, a cheaper test
// on convex-hull approximations resolves many candidates.

// ConvexHull returns the convex hull of the region's vertices as a
// counter-clockwise polygon (Andrew's monotone chain). The hull of a
// region is its minimal convex superset, and — like the MBR — it is a
// *crisp* approximation: every hull vertex lies on the region.
func ConvexHull(points []Point) Polygon {
	pts := make([]Point, len(points))
	copy(pts, points)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
	// Deduplicate.
	uniq := pts[:0]
	for i, p := range pts {
		if i == 0 || p != pts[i-1] {
			uniq = append(uniq, p)
		}
	}
	pts = uniq
	if len(pts) < 3 {
		return Polygon(pts)
	}
	var lower, upper []Point
	for _, p := range pts {
		for len(lower) >= 2 && cross2(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(pts) - 1; i >= 0; i-- {
		p := pts[i]
		for len(upper) >= 2 && cross2(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	return Polygon(hull)
}

// HullOf returns the convex hull of a region (the hull of its
// effective boundary vertices; for multi-part regions this is the hull
// of the union).
func HullOf(r Region) Polygon {
	var pts []Point
	for _, seg := range r.BoundarySegments() {
		pts = append(pts, seg.A, seg.B)
	}
	return ConvexHull(pts)
}

// IsConvex reports whether the polygon is convex (all turns in one
// orientation, collinear vertices allowed).
func (pg Polygon) IsConvex() bool {
	n := len(pg)
	if n < 3 {
		return false
	}
	sign := 0.0
	for i := 0; i < n; i++ {
		c := cross2(pg[i], pg[(i+1)%n], pg[(i+2)%n])
		if c == 0 {
			continue
		}
		if sign == 0 {
			sign = c
		} else if (c > 0) != (sign > 0) {
			return false
		}
	}
	return true
}

// PossibleGivenHulls returns the region relations possible between two
// regions whose convex hulls stand in relation h. The rules are sound
// consequences of p ⊆ hull(p) and convexity (a region contained in a
// convex set has its hull contained there too):
//
//   - hulls disjoint ⇒ regions disjoint;
//   - hull interiors disjoint (meet) ⇒ regions disjoint or meet;
//   - q ⊆ p requires hull(q) ⊆ hull(p), so containment relations are
//     refuted whenever the hulls lack the corresponding containment.
func PossibleGivenHulls(h topo.Relation) topo.Set {
	switch h {
	case topo.Disjoint:
		return topo.NewSet(topo.Disjoint)
	case topo.Meet:
		return topo.NewSet(topo.Disjoint, topo.Meet)
	}
	out := topo.FullSet()
	if !h.ContainsRef() {
		out = out.Minus(topo.NewSet(topo.Contains, topo.Covers, topo.Equal))
	}
	if !h.InsideRef() {
		out = out.Minus(topo.NewSet(topo.Inside, topo.CoveredBy, topo.Equal))
	}
	return out
}
