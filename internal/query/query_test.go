package query

import (
	"math/rand"
	"sort"
	"testing"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/index"
	"mbrtopo/internal/mbr"
	"mbrtopo/internal/topo"
	"mbrtopo/internal/workload"
)

// scenario is a populated world: objects with exact geometry, their
// MBRs loaded into all three access methods.
type scenario struct {
	objects MapStore
	rects   map[uint64]geom.Rect
	indexes map[string]index.Index
}

func buildScenario(t *testing.T, seed int64, n int) *scenario {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sc := &scenario{
		objects: MapStore{},
		rects:   map[uint64]geom.Rect{},
		indexes: map[string]index.Index{},
	}
	for oid := uint64(1); oid <= uint64(n); oid++ {
		w := 1 + rng.Float64()*6
		h := 1 + rng.Float64()*6
		x := rng.Float64() * (100 - w)
		y := rng.Float64() * (100 - h)
		r := geom.R(x, y, x+w, y+h)
		pg := workload.PolygonInRect(rng, r, 5+rng.Intn(6))
		if err := pg.Validate(); err != nil {
			t.Fatalf("generated invalid polygon: %v", err)
		}
		sc.objects[oid] = pg
		sc.rects[oid] = pg.Bounds()
	}
	for _, kind := range index.AllKinds() {
		idx, err := index.NewWithPageSize(kind, 512)
		if err != nil {
			t.Fatal(err)
		}
		for oid, r := range sc.rects {
			if err := idx.Insert(r, oid); err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
		}
		sc.indexes[kind.String()] = idx
	}
	return sc
}

func (sc *scenario) bruteForce(rels topo.Set, ref geom.Polygon) []uint64 {
	var out []uint64
	for oid, pg := range sc.objects {
		if rels.Has(geom.Relate(pg, ref)) {
			out = append(out, oid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// bruteFilterCount counts objects whose MBR configuration is
// admissible for the relation set — the ground truth for the filter
// step's candidate count.
func (sc *scenario) bruteFilterCount(rels topo.Set, refMBR geom.Rect) int {
	cands := mbr.CandidatesSet(rels)
	n := 0
	for _, r := range sc.rects {
		if cands.Has(mbr.ConfigOf(r, refMBR)) {
			n++
		}
	}
	return n
}

func oids(ms []Match) []uint64 {
	out := make([]uint64, len(ms))
	for i, m := range ms {
		out[i] = m.OID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func eqU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQueryAllRelationsAllTrees is the end-to-end correctness test of
// the 4-step strategy: for every relation and every access method, the
// full pipeline (filter + refinement) must return exactly the
// brute-force answer, and the filter step must retrieve exactly the
// objects whose MBR configuration is admissible (no false misses, no
// spurious candidates).
func TestQueryAllRelationsAllTrees(t *testing.T) {
	sc := buildScenario(t, 41, 500)
	rng := rand.New(rand.NewSource(8))

	// References: a few stored objects plus engineered ones that
	// realise the rare relations (equal, covers, contains).
	refs := []geom.Polygon{
		sc.objects[1],
		sc.objects[2].ScaleAbout(sc.objects[2].Bounds().Center(), 1.2),
		workload.PolygonInRect(rng, geom.R(20, 20, 60, 60), 8),
		workload.PolygonInRect(rng, geom.R(48, 48, 52, 52), 6),
	}
	for name, idx := range sc.indexes {
		proc := &Processor{Idx: idx, Objects: sc.objects}
		for _, ref := range refs {
			for _, rel := range topo.All() {
				res, err := proc.Query(rel, ref)
				if err != nil {
					t.Fatalf("%s %v: %v", name, rel, err)
				}
				want := sc.bruteForce(topo.NewSet(rel), ref)
				if !eqU64(oids(res.Matches), want) {
					t.Fatalf("%s %v: got %d matches, want %d", name, rel, len(res.Matches), len(want))
				}
				if wantCands := sc.bruteFilterCount(topo.NewSet(rel), ref.Bounds()); res.Stats.Candidates != wantCands {
					t.Fatalf("%s %v: filter retrieved %d candidates, want %d",
						name, rel, res.Stats.Candidates, wantCands)
				}
				if res.Stats.NodeAccesses == 0 {
					t.Fatalf("%s %v: no node accesses counted", name, rel)
				}
			}
		}
	}
}

// TestQueryStatsAccounting: candidates = direct accepts + refinement
// tests; results = candidates − false hits.
func TestQueryStatsAccounting(t *testing.T) {
	sc := buildScenario(t, 5, 300)
	proc := &Processor{Idx: sc.indexes["R-tree"], Objects: sc.objects}
	ref := sc.objects[3]
	for _, rel := range topo.All() {
		res, err := proc.Query(rel, ref)
		if err != nil {
			t.Fatal(err)
		}
		s := res.Stats
		if s.Candidates != s.DirectAccepts+s.RefinementTests {
			t.Errorf("%v: %d candidates != %d direct + %d refined",
				rel, s.Candidates, s.DirectAccepts, s.RefinementTests)
		}
		if len(res.Matches) != s.Candidates-s.FalseHits {
			t.Errorf("%v: %d matches != %d candidates − %d false hits",
				rel, len(res.Matches), s.Candidates, s.FalseHits)
		}
	}
}

// TestDisjunctionIn: the cadastral "in" query (Section 5) returns the
// union of inside and covered_by, and its filter cost equals the
// covered_by filter cost (the inside candidates are a subset).
func TestDisjunctionIn(t *testing.T) {
	sc := buildScenario(t, 11, 400)
	ref := workload.PolygonInRect(rand.New(rand.NewSource(2)), geom.R(25, 25, 75, 75), 9)
	for name, idx := range sc.indexes {
		proc := &Processor{Idx: idx, Objects: sc.objects}
		res, err := proc.QuerySet(topo.In, ref)
		if err != nil {
			t.Fatal(err)
		}
		want := sc.bruteForce(topo.In, ref)
		if !eqU64(oids(res.Matches), want) {
			t.Fatalf("%s: in-query got %d, want %d", name, len(res.Matches), len(want))
		}
		cb, err := proc.Query(topo.CoveredBy, ref)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Candidates != cb.Stats.Candidates {
			t.Errorf("%s: in retrieves %d candidates but covered_by retrieves %d (paper: identical)",
				name, res.Stats.Candidates, cb.Stats.Candidates)
		}
		if res.Stats.NodeAccesses != cb.Stats.NodeAccesses {
			t.Errorf("%s: in costs %d accesses, covered_by %d (paper: identical)",
				name, res.Stats.NodeAccesses, cb.Stats.NodeAccesses)
		}
	}
}

// TestDisjunctionDirectAccept: a disjunction covering every relation a
// configuration admits should accept without refinement; the full
// disjunction of all eight relations returns everything with zero
// refinement tests.
func TestDisjunctionDirectAccept(t *testing.T) {
	sc := buildScenario(t, 13, 200)
	proc := &Processor{Idx: sc.indexes["R*-tree"], Objects: sc.objects}
	ref := sc.objects[7]
	res, err := proc.QuerySet(topo.FullSet(), ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != len(sc.objects) {
		t.Fatalf("full disjunction returned %d of %d", len(res.Matches), len(sc.objects))
	}
	if res.Stats.RefinementTests != 0 {
		t.Fatalf("full disjunction ran %d refinement tests", res.Stats.RefinementTests)
	}
}

// TestConjunction compares two-reference conjunctions against brute
// force, including the Table 4 short-circuit.
func TestConjunction(t *testing.T) {
	sc := buildScenario(t, 19, 400)
	rng := rand.New(rand.NewSource(3))
	// Overlapping references somewhere in the middle of the world.
	q1 := workload.PolygonInRect(rng, geom.R(20, 20, 70, 70), 8)
	q2 := workload.PolygonInRect(rng, geom.R(40, 40, 90, 90), 8)
	// And a disjoint pair for the short-circuit.
	q3 := workload.PolygonInRect(rng, geom.R(0, 0, 15, 15), 7)

	proc := &Processor{Idx: sc.indexes["R-tree"], Objects: sc.objects}
	brute := func(r1 topo.Relation, a geom.Polygon, r2 topo.Relation, b geom.Polygon) []uint64 {
		var out []uint64
		for oid, pg := range sc.objects {
			if geom.Relate(pg, a) == r1 && geom.Relate(pg, b) == r2 {
				out = append(out, oid)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for _, r1 := range topo.All() {
		for _, r2 := range []topo.Relation{topo.Overlap, topo.Inside, topo.Disjoint, topo.Meet} {
			res, err := proc.QueryConjunction(r1, q1, r2, q2)
			if err != nil {
				t.Fatal(err)
			}
			want := brute(r1, q1, r2, q2)
			if !eqU64(oids(res.Matches), want) {
				t.Fatalf("%v ∧ %v: got %d, want %d", r1, r2, len(res.Matches), len(want))
			}
			if res.Stats.ShortCircuited && len(want) != 0 {
				t.Fatalf("%v ∧ %v: short-circuited a non-empty result", r1, r2)
			}
		}
	}
	// The paper's example: inside q3 ∧ overlap q1 with q3 disjoint from
	// q1 must short-circuit (q3 is far from q1).
	if geom.Relate(q3, q1) != topo.Disjoint {
		t.Fatal("fixture: q3 should be disjoint from q1")
	}
	res, err := proc.QueryConjunction(topo.Inside, q3, topo.Overlap, q1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.ShortCircuited || len(res.Matches) != 0 || res.Stats.NodeAccesses != 0 {
		t.Fatalf("expected zero-IO short circuit, got %+v", res.Stats)
	}
}

// TestConjunctionChoosesCheaperSide: with one cheap relation (contains)
// and one expensive (overlap), the index retrieval must run on the
// cheap side — observable through the candidate count.
func TestConjunctionChoosesCheaperSide(t *testing.T) {
	if swapConjunction(topo.Overlap, geom.R(0, 0, 10, 10).Polygon(), topo.Contains, geom.R(0, 0, 1, 1).Polygon()) != true {
		t.Error("should retrieve the contains side first")
	}
	if swapConjunction(topo.Equal, geom.R(0, 0, 1, 1).Polygon(), topo.Overlap, geom.R(0, 0, 10, 10).Polygon()) {
		t.Error("should keep the equal side first")
	}
	// Same group: smaller reference MBR wins.
	if !swapConjunction(topo.Meet, geom.R(0, 0, 50, 50).Polygon(), topo.Overlap, geom.R(0, 0, 2, 2).Polygon()) {
		t.Error("should retrieve against the smaller reference")
	}
	if CostGroup(topo.Disjoint) != 2 || CostGroup(topo.Equal) != 0 || CostGroup(topo.Meet) != 1 {
		t.Error("cost groups broken")
	}
}

// TestNonCrispRetrieval stores slightly enlarged MBRs (the Section 6
// imprecision scenario) and checks that the NonCrisp processor still
// finds every answer, while refining everything.
func TestNonCrispRetrieval(t *testing.T) {
	sc := buildScenario(t, 29, 400)
	rng := rand.New(rand.NewSource(7))
	// Rebuild indexes with enlarged (non-crisp) MBRs.
	enlarged := map[uint64]geom.Rect{}
	for oid, r := range sc.rects {
		e := func() float64 { return rng.Float64() * 1e-7 }
		enlarged[oid] = geom.Rect{
			Min: geom.Point{X: r.Min.X - e(), Y: r.Min.Y - e()},
			Max: geom.Point{X: r.Max.X + e(), Y: r.Max.Y + e()},
		}
	}
	for _, kind := range index.AllKinds() {
		idx, err := index.NewWithPageSize(kind, 512)
		if err != nil {
			t.Fatal(err)
		}
		for oid, r := range enlarged {
			if err := idx.Insert(r, oid); err != nil {
				t.Fatal(err)
			}
		}
		proc := &Processor{Idx: idx, Objects: sc.objects, NonCrisp: true}
		ref := sc.objects[11]
		for _, rel := range topo.All() {
			res, err := proc.Query(rel, ref)
			if err != nil {
				t.Fatal(err)
			}
			want := sc.bruteForce(topo.NewSet(rel), ref)
			if !eqU64(oids(res.Matches), want) {
				t.Fatalf("%v non-crisp %v: got %d, want %d", kind, rel, len(res.Matches), len(want))
			}
			if res.Stats.DirectAccepts != 0 {
				t.Fatalf("%v non-crisp %v: direct accepts must be disabled", kind, rel)
			}
		}
	}
}

// TestQueryErrors covers the error paths.
func TestQueryErrors(t *testing.T) {
	sc := buildScenario(t, 1, 50)
	proc := &Processor{Idx: sc.indexes["R-tree"], Objects: sc.objects}
	if _, err := proc.Query(topo.Equal, geom.Polygon{{X: 0, Y: 0}, {X: 1, Y: 0}}); err == nil {
		t.Error("invalid reference accepted")
	}
	if _, err := proc.QuerySetMBR(topo.Set(0), geom.R(0, 0, 1, 1)); err == nil {
		t.Error("empty relation set accepted")
	}
	if _, err := proc.QueryMBR(topo.Equal, geom.R(1, 1, 1, 2)); err == nil {
		t.Error("degenerate reference MBR accepted")
	}
	bad := &Processor{Idx: sc.indexes["R-tree"], Objects: MapStore{}}
	if _, err := bad.Query(topo.Overlap, sc.objects[1]); err == nil {
		t.Error("missing object in store not reported")
	}
	noObj := &Processor{Idx: sc.indexes["R-tree"]}
	if _, err := noObj.QueryConjunction(topo.Overlap, sc.objects[1], topo.Meet, sc.objects[2]); err == nil {
		t.Error("conjunction without object store accepted")
	}
}

// TestFilterOnlyMode: without an ObjectStore, Query returns the raw
// filter candidates (the paper's experimental mode).
func TestFilterOnlyMode(t *testing.T) {
	sc := buildScenario(t, 3, 300)
	for name, idx := range sc.indexes {
		proc := &Processor{Idx: idx}
		refMBR := geom.R(30, 30, 55, 50)
		for _, rel := range topo.All() {
			res, err := proc.QueryMBR(rel, refMBR)
			if err != nil {
				t.Fatal(err)
			}
			if want := sc.bruteFilterCount(topo.NewSet(rel), refMBR); res.Stats.Candidates != want {
				t.Fatalf("%s %v: %d candidates, want %d", name, rel, res.Stats.Candidates, want)
			}
			if res.Stats.RefinementTests != 0 {
				t.Fatalf("%s: filter-only mode refined", name)
			}
		}
	}
}
