package query

import (
	"math/rand"
	"sort"
	"testing"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/index"
	"mbrtopo/internal/topo"
	"mbrtopo/internal/workload"
)

// buildArchipelagoScenario populates a world where roughly half the
// objects are multi-part regions (archipelagos).
func buildArchipelagoScenario(t *testing.T, seed int64, n int) (RegionStore, map[uint64]geom.Rect, map[string]index.Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	store := RegionStore{}
	rects := map[uint64]geom.Rect{}
	for oid := uint64(1); oid <= uint64(n); oid++ {
		var region geom.Region
		if rng.Intn(2) == 0 {
			w := 1 + rng.Float64()*6
			h := 1 + rng.Float64()*6
			x := rng.Float64() * (100 - w)
			y := rng.Float64() * (100 - h)
			region = workload.PolygonInRect(rng, geom.R(x, y, x+w, y+h), 5+rng.Intn(5))
		} else {
			// 2–3 islands scattered within a home range.
			k := 2 + rng.Intn(2)
			var mp geom.MultiPolygon
			hx := rng.Float64() * 80
			hy := rng.Float64() * 80
			for len(mp) < k {
				x := hx + rng.Float64()*16
				y := hy + rng.Float64()*16
				island := workload.PolygonInRect(rng,
					geom.R(x, y, x+0.5+rng.Float64()*2, y+0.5+rng.Float64()*2), 4+rng.Intn(4))
				ok := true
				for _, prev := range mp {
					if r := geom.Relate(island, prev); r != topo.Disjoint {
						ok = false
						break
					}
				}
				if ok {
					mp = append(mp, island)
				}
			}
			region = mp
		}
		if err := region.Validate(); err != nil {
			t.Fatalf("generated invalid region: %v", err)
		}
		store[oid] = region
		rects[oid] = region.Bounds()
	}
	indexes := map[string]index.Index{}
	for _, kind := range index.AllKinds() {
		idx, err := index.NewWithPageSize(kind, 512)
		if err != nil {
			t.Fatal(err)
		}
		for oid, r := range rects {
			if err := idx.Insert(r, oid); err != nil {
				t.Fatal(err)
			}
		}
		indexes[kind.String()] = idx
	}
	return store, rects, indexes
}

// TestNonContiguousQueryAllRelations: end-to-end correctness of the
// Section 7 mode across all relations and access methods.
func TestNonContiguousQueryAllRelations(t *testing.T) {
	store, _, indexes := buildArchipelagoScenario(t, 61, 350)
	refs := []geom.Region{
		store[1],
		store[2],
		geom.R(20, 20, 70, 70).Polygon(),
		geom.MultiPolygon{
			geom.R(10, 10, 30, 30).Polygon(),
			geom.R(60, 60, 85, 85).Polygon(),
		},
	}
	brute := func(rels topo.Set, ref geom.Region) []uint64 {
		var out []uint64
		for oid, rg := range store {
			if rels.Has(geom.RelateRegions(rg, ref)) {
				out = append(out, oid)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for name, idx := range indexes {
		proc := &Processor{Idx: idx, Objects: store, NonContiguous: true}
		for _, ref := range refs {
			for _, rel := range topo.All() {
				res, err := proc.Query(rel, ref)
				if err != nil {
					t.Fatalf("%s %v: %v", name, rel, err)
				}
				want := brute(topo.NewSet(rel), ref)
				if !eqU64(oids(res.Matches), want) {
					t.Fatalf("%s %v: got %d matches, want %d", name, rel, len(res.Matches), len(want))
				}
			}
		}
	}
}

// TestContiguousFilterMissesArchipelago demonstrates why the Section 7
// tables are necessary: a two-part object flanking the reference (MBR
// configuration R5_9) is disjoint from it, the contiguous disjoint row
// excludes R5_9, so the contiguous-mode processor misses it — the
// non-contiguous mode finds it.
func TestContiguousFilterMissesArchipelago(t *testing.T) {
	ref := geom.R(40, 40, 50, 50).Polygon()
	flank := geom.MultiPolygon{
		geom.R(30, 42, 36, 48).Polygon(),
		geom.R(54, 42, 60, 48).Polygon(),
	}
	if got := geom.RelateRegions(flank, ref); got != topo.Disjoint {
		t.Fatalf("fixture relates as %v", got)
	}
	idx, err := index.NewWithPageSize(index.KindRTree, 512)
	if err != nil {
		t.Fatal(err)
	}
	store := RegionStore{1: flank}
	if err := idx.Insert(flank.Bounds(), 1); err != nil {
		t.Fatal(err)
	}

	contiguous := &Processor{Idx: idx, Objects: store}
	res, err := contiguous.Query(topo.Disjoint, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Fatalf("contiguous mode unexpectedly found the archipelago (config is in its disjoint row?)")
	}

	relaxed := &Processor{Idx: idx, Objects: store, NonContiguous: true}
	res, err = relaxed.Query(topo.Disjoint, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0].OID != 1 {
		t.Fatalf("non-contiguous mode missed the archipelago: %+v", res.Matches)
	}
}

// TestNonContiguousStatsAccounting mirrors the contiguous accounting
// identities under the relaxed tables.
func TestNonContiguousStatsAccounting(t *testing.T) {
	store, _, indexes := buildArchipelagoScenario(t, 3, 200)
	proc := &Processor{Idx: indexes["R*-tree"], Objects: store, NonContiguous: true}
	ref := geom.R(25, 25, 60, 55).Polygon()
	for _, rel := range topo.All() {
		res, err := proc.Query(rel, ref)
		if err != nil {
			t.Fatal(err)
		}
		s := res.Stats
		if s.Candidates != s.DirectAccepts+s.RefinementTests {
			t.Errorf("%v: accounting broken: %+v", rel, s)
		}
		if len(res.Matches) != s.Candidates-s.FalseHits {
			t.Errorf("%v: match count broken: %+v", rel, s)
		}
	}
}
