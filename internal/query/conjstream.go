package query

import (
	"context"
	"fmt"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/mbr"
	"mbrtopo/internal/topo"
)

// StreamConjunction is the streaming (filter-level) face of the
// Section 5 conjunction: find all stored MBRs that are candidates for
// rels1 against ref1 AND candidates for rels2 against ref2. Like
// Stream it never touches exact geometry, so it serves the wire path,
// whose data are rectangles.
//
// The paper's processing order is kept: the composition table first
// (if no (r1, r2) pair is consistent with the relation between the
// two references, the exact result is provably empty and the
// traversal is skipped — candidates of an empty conjunction are pure
// false hits); then ONE side is retrieved through the index — the
// side the planner estimates cheaper, or the static CostGroup choice
// without statistics — and the other side is tested in memory against
// each retrieved candidate (domination pre-test, then the
// configuration probe).
func (p *Processor) StreamConjunction(ctx context.Context, rels1 topo.Set, ref1 geom.Rect, rels2 topo.Set, ref2 geom.Rect, limit int, yield func(Match) bool) (Stats, error) {
	if rels1.IsEmpty() || rels2.IsEmpty() {
		return Stats{}, fmt.Errorf("query: empty relation set")
	}
	if !ref1.Valid() || !ref2.Valid() {
		return Stats{}, fmt.Errorf("query: degenerate reference MBR")
	}

	// Step 1: semantic optimisation. The references arrive as MBRs, so
	// their mutual relation is exact (rectangles are their own MBRs).
	refRel := mbr.RelateRects(ref1, ref2)
	consistent := false
scan:
	for _, r1 := range topo.All() {
		if !rels1.Has(r1) {
			continue
		}
		for _, r2 := range topo.All() {
			if rels2.Has(r2) && topo.ConsistentConjunction(r1, r2, refRel) {
				consistent = true
				break scan
			}
		}
	}
	if !consistent {
		return Stats{
			ShortCircuited: true,
			Explain:        fmt.Sprintf("plan=conjunction short-circuit refs=%s", refRel),
		}, nil
	}

	// Step 2: pick the retrieval side.
	plan := planConjunction(PlannerFor(p.Idx), rels1, ref1, rels2, ref2)
	getRels, getRef, memRels, memRef := rels1, ref1, rels2, ref2
	if plan.retrieveSecond {
		getRels, getRef, memRels, memRef = rels2, ref2, rels1, ref1
	}

	// Step 3: traverse on the retrieved side, filter the other side in
	// memory on the way out.
	cands := p.candidateConfigs(getRels)
	memCands := p.candidateConfigs(memRels)
	memDom := mbr.DominationFor(memCands)
	nodePred, leafPred := p.filterPreds(cands, getRef)
	seen := make(map[uint64]struct{})
	emitted := 0
	ts, err := p.Idx.SearchCtx(ctx, nodePred, leafPred, func(r geom.Rect, oid uint64) bool {
		if !memDom.Admits(r, memRef) || !memCands.Has(mbr.ConfigOf(r, memRef)) {
			return true
		}
		if _, ok := seen[oid]; ok {
			return true
		}
		seen[oid] = struct{}{}
		if !yield(Match{OID: oid, Rect: r}) {
			return false
		}
		emitted++
		return limit <= 0 || emitted < limit
	})
	stats := Stats{
		NodeAccesses: ts.NodeAccesses,
		Candidates:   emitted,
		Reordered:    plan.reordered,
		Explain:      appendActual(plan.explain, emitted),
	}
	if err != nil {
		return stats, fmt.Errorf("query: stream conjunction: %w", err)
	}
	return stats, nil
}
