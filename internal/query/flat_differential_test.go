package query

import (
	"bytes"
	"context"
	"sort"
	"testing"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/index"
	"mbrtopo/internal/rtree"
	"mbrtopo/internal/topo"
	"mbrtopo/internal/workload"
)

// differentialPageSize keeps the trees several levels deep at the
// differential test's cardinalities.
const differentialPageSize = 408

// TestFlatDifferential is the backend-equivalence proof: for every
// tree kind × workload shape, a flat snapshot must answer every
// topological query (all 8 relations), kNN search and spatial join
// with exactly the paged tree's result sets and bit-identical
// node-access statistics. The snapshot is written and reopened through
// the real serialization, so this also covers the format round trip.
func TestFlatDifferential(t *testing.T) {
	workloads := map[string]*workload.Dataset{
		"uniform":   workload.NewDataset(workload.Small, 1500, 12, 101),
		"clustered": workload.ClusteredDataset(workload.Small, 1500, 12, 8, 202),
	}
	for wname, ds := range workloads {
		for _, kind := range index.AllKinds() {
			name := wname + "/" + kind.String()
			t.Run(name, func(t *testing.T) {
				idx, err := index.NewWithPageSize(kind, differentialPageSize)
				if err != nil {
					t.Fatal(err)
				}
				if err := index.Load(idx, ds.Items); err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := index.WriteFlat(idx, &buf, 9); err != nil {
					t.Fatal(err)
				}
				flat, err := rtree.OpenFlatBytes(buf.Bytes())
				if err != nil {
					t.Fatal(err)
				}
				paged := &Processor{Idx: idx}
				flatP := &Processor{Idx: flat}

				for _, rel := range topo.All() {
					for qi, q := range ds.Queries {
						pr, err := paged.QueryMBRCtx(context.Background(), rel, q)
						if err != nil {
							t.Fatalf("%s paged query %d: %v", rel, qi, err)
						}
						fr, err := flatP.QueryMBRCtx(context.Background(), rel, q)
						if err != nil {
							t.Fatalf("%s flat query %d: %v", rel, qi, err)
						}
						if pr.Stats != fr.Stats {
							t.Fatalf("%s query %d: stats diverge: paged %+v flat %+v", rel, qi, pr.Stats, fr.Stats)
						}
						if len(pr.Matches) != len(fr.Matches) {
							t.Fatalf("%s query %d: %d paged vs %d flat matches", rel, qi, len(pr.Matches), len(fr.Matches))
						}
						for i := range pr.Matches {
							if pr.Matches[i] != fr.Matches[i] {
								t.Fatalf("%s query %d: match %d differs: %+v vs %+v",
									rel, qi, i, pr.Matches[i], fr.Matches[i])
							}
						}
					}
				}

				for _, p := range []geom.Point{{X: 500, Y: 500}, {X: 0, Y: 1000}, {X: 999, Y: 1}} {
					for _, k := range []int{1, 10} {
						pn, pts, err := idx.NearestCtx(context.Background(), p, k)
						if err != nil {
							t.Fatalf("paged kNN: %v", err)
						}
						fn, fts, err := flat.NearestCtx(context.Background(), p, k)
						if err != nil {
							t.Fatalf("flat kNN: %v", err)
						}
						if pts != fts {
							t.Fatalf("kNN %v k=%d: stats diverge: paged %+v flat %+v", p, k, pts, fts)
						}
						if len(pn) != len(fn) {
							t.Fatalf("kNN %v k=%d: %d paged vs %d flat", p, k, len(pn), len(fn))
						}
						for i := range pn {
							if pn[i] != fn[i] {
								t.Fatalf("kNN %v k=%d: neighbour %d differs", p, k, i)
							}
						}
					}
				}

				if idx.CoveringNodeRects() {
					rels := topo.NewSet(topo.Overlap, topo.Meet)
					opts := JoinOptions{Workers: 1}
					pj, err := JoinTopological(idx, idx, rels, opts)
					if err != nil {
						t.Fatalf("paged join: %v", err)
					}
					fj, err := JoinTopological(flat, flat, rels, opts)
					if err != nil {
						t.Fatalf("flat join: %v", err)
					}
					if pj.Stats != fj.Stats {
						t.Fatalf("join stats diverge: paged %+v flat %+v", pj.Stats, fj.Stats)
					}
					sortPairs := func(ps []JoinPair) {
						sort.Slice(ps, func(i, j int) bool {
							if ps[i].LeftOID != ps[j].LeftOID {
								return ps[i].LeftOID < ps[j].LeftOID
							}
							return ps[i].RightOID < ps[j].RightOID
						})
					}
					sortPairs(pj.Pairs)
					sortPairs(fj.Pairs)
					if len(pj.Pairs) != len(fj.Pairs) {
						t.Fatalf("join found %d paged vs %d flat pairs", len(pj.Pairs), len(fj.Pairs))
					}
					for i := range pj.Pairs {
						if pj.Pairs[i] != fj.Pairs[i] {
							t.Fatalf("join pair %d differs: %+v vs %+v", i, pj.Pairs[i], fj.Pairs[i])
						}
					}
				} else {
					// Flat snapshots of R+-trees must be rejected by the
					// join, like their paged source.
					if err := CanJoin(flat, flat); err == nil {
						t.Fatal("CanJoin accepted a flat R+ snapshot")
					}
				}
			})
		}
	}
}
