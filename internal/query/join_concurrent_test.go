package query

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/pagefile"
	"mbrtopo/internal/rtree"
	"mbrtopo/internal/topo"
	"mbrtopo/internal/workload"
)

// This file is the join half of the snapshot-consistency story (run it
// with -race): a join pins one published snapshot of each tree, so
// however many batched writers and deleters churn the right index
// while the join runs, every observed batch is all-or-nothing and the
// per-join statistics stay exact.

// TestJoinSnapshotConsistency: the left index holds one rectangle
// covering the whole workspace, so a not_disjoint join returns exactly
// the right tree's current contents — which makes snapshot atomicity
// directly observable: each writer batch must appear in a join result
// either completely or not at all. Churn items inserted and deleted
// individually run alongside to keep page shadowing busy.
func TestJoinSnapshotConsistency(t *testing.T) {
	world := workload.World()
	left, err := rtree.NewRStar(pagefile.NewMemFile(512))
	if err != nil {
		t.Fatal(err)
	}
	if err := left.Insert(world, 1); err != nil {
		t.Fatal(err)
	}
	right, err := rtree.NewRStar(pagefile.NewMemFile(512))
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers      = 2
		batchesPer   = 8
		batchSize    = 40
		churnItems   = 120
		churnOIDBase = 1 << 20
	)
	rels := topo.NotDisjoint

	var wg sync.WaitGroup
	var writersDone atomic.Bool
	// Batched writers: batch (w, b) holds OIDs [base, base+batchSize).
	batchBase := func(w, b int) uint64 { return uint64(1000*(w*batchesPer+b) + 1) }
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batchesPer; b++ {
				base := batchBase(w, b)
				recs := make([]rtree.Record, batchSize)
				for i := range recs {
					// Keep every rectangle inside the workspace: a batch
					// item outside it would be disjoint from the left
					// rectangle and invisible to the join.
					x := float64(((w*batchesPer+b)*101 + i*7) % 900)
					y := float64(((w*batchesPer + b) * 211 % 900) + i)
					recs[i] = rtree.Record{Rect: geom.R(x, y, x+2, y+2), OID: base + uint64(i)}
				}
				if err := right.InsertBatch(recs); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Churn: individual inserts chased by a deleter (not batch-atomic,
	// so the invariant below ignores their OID range).
	churnRects := make([]geom.Rect, churnItems)
	churnReady := make(chan int, churnItems)
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer close(churnReady)
		for i := 0; i < churnItems; i++ {
			r := geom.R(float64(i%800)+50, float64((i*37)%800)+50, float64(i%800)+53, float64((i*37)%800)+53)
			churnRects[i] = r
			if err := right.Insert(r, churnOIDBase+uint64(i)); err != nil {
				t.Error(err)
				return
			}
			churnReady <- i
		}
	}()
	go func() {
		defer wg.Done()
		for i := range churnReady {
			if err := right.Delete(churnRects[i], churnOIDBase+uint64(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		writersDone.Store(true)
	}()

	checkJoin := func(final bool) {
		res, err := JoinTopological(left, right, rels, JoinOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Candidates != len(res.Pairs) {
			t.Fatalf("stats say %d candidates, join returned %d pairs", res.Stats.Candidates, len(res.Pairs))
		}
		perBatch := map[uint64]int{}
		for _, p := range res.Pairs {
			if p.LeftOID != 1 {
				t.Fatalf("pair with unknown left OID %d", p.LeftOID)
			}
			if p.RightOID >= churnOIDBase {
				continue
			}
			perBatch[(p.RightOID-1)/1000]++
		}
		for batch, n := range perBatch {
			if n != batchSize {
				t.Fatalf("join observed %d of batch %d's %d rectangles: batches must be all-or-nothing",
					n, batch, batchSize)
			}
		}
		if final {
			if want := writers * batchesPer; len(perBatch) != want {
				t.Fatalf("final join saw %d complete batches, want %d", len(perBatch), want)
			}
		}
	}
	for !writersDone.Load() {
		checkJoin(false)
	}
	checkJoin(true)
}

// TestJoinCancellationPrompt: cancelling the context mid-join stops
// page reads promptly — the partial statistics stay well below a full
// run's — on both the filter-only and the refined pipeline.
func TestJoinCancellationPrompt(t *testing.T) {
	lStore, _, lIdx := joinScenario(t, 41, 600)
	rStore, _, rIdx := joinScenario(t, 42, 600)
	rels := topo.NotDisjoint

	full, err := JoinTopological(lIdx, rIdx, rels, JoinOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Pairs) < 100 {
		t.Fatalf("scenario too sparse (%d pairs) for a meaningful cancellation test", len(full.Pairs))
	}

	for _, opts := range []JoinOptions{
		{Workers: 4},
		{Workers: 4, LeftObjects: lStore, RightObjects: rStore, RefineWorkers: 4},
	} {
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		stats, err := JoinStream(ctx, lIdx, rIdx, rels, opts, func(JoinPair) bool {
			if n++; n == 5 {
				cancel()
			}
			return true
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled join returned %v, want context.Canceled", err)
		}
		if stats.NodeAccesses == 0 || stats.NodeAccesses >= full.Stats.NodeAccesses {
			t.Fatalf("cancelled join read %d pages (full run %d); want a strict partial read",
				stats.NodeAccesses, full.Stats.NodeAccesses)
		}
	}
}
