package query

import (
	"fmt"
	"strings"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/index"
	"mbrtopo/internal/rtree"
	"mbrtopo/internal/topo"
)

// Planner estimates per-relation candidate counts from the index's
// node-MBR summary (rtree.TreeStats) and uses them to order the terms
// of a conjunction cheapest-first. The paper's static rule — CostGroup
// first, smaller reference MBR as tie-breaker — ignores the data
// distribution: a small reference sitting inside a dense cluster can
// be far more expensive to retrieve than a large one over empty space.
// The histograms see that; the static rule cannot.
type Planner struct {
	St *rtree.TreeStats
}

// PlannerFor builds a planner over the index's statistics, or nil
// when the backend has none (or an empty summary): callers fall back
// to the static heuristics then.
func PlannerFor(idx index.Index) *Planner {
	st, err := index.StatsOf(idx)
	if err != nil || st == nil || st.Samples() == 0 {
		return nil
	}
	return &Planner{St: st}
}

// Estimate predicts how many stored MBRs the filter step retrieves
// for one relation against a reference MBR. The histogram estimators
// model intersection, containment, and being-contained; the relation
// maps onto whichever of those bounds its candidate set:
//
//   - disjoint retrieves (nearly) everything outside the reference,
//   - inside/covered_by retrieve entries within the reference that
//     are small enough to fit,
//   - contains/covers retrieve entries whose extent reaches over the
//     reference,
//   - equal is bounded by both containment directions,
//   - meet and overlap intersect the reference; meet only through its
//     boundary, so it is discounted to a thin fraction.
func (p *Planner) Estimate(rel topo.Relation, ref geom.Rect) float64 {
	st := p.St
	n := float64(st.Samples())
	inter := st.EstimateIntersecting(ref)
	var est float64
	switch rel {
	case topo.Disjoint:
		est = n - inter
	case topo.Inside, topo.CoveredBy:
		est = st.EstimateContainedBy(ref)
	case topo.Contains, topo.Covers:
		est = st.EstimateContaining(ref)
	case topo.Equal:
		est = min(st.EstimateContainedBy(ref), st.EstimateContaining(ref))
	case topo.Meet:
		// Boundary contact only: a thin slice of the intersecting
		// population, floored at one so meet never looks free.
		est = inter*0.05 + 1
	default: // Overlap and anything unmapped: full intersection.
		est = inter
	}
	return max(0, min(est, n))
}

// EstimateSet sums the per-relation estimates of a disjunction,
// clamped to the population size.
func (p *Planner) EstimateSet(rels topo.Set, ref geom.Rect) float64 {
	total := 0.0
	for _, r := range topo.All() {
		if rels.Has(r) {
			total += p.Estimate(r, ref)
		}
	}
	return min(total, float64(p.St.Samples()))
}

// conjunctionPlan is the planner's (or the static rule's) decision for
// a two-term conjunction: which side to retrieve through the index,
// whether that overrode the static order, and the explain line.
type conjunctionPlan struct {
	retrieveSecond bool
	reordered      bool
	explain        string
}

// planConjunction picks the retrieval side of r1(p, q1) ∧ r2(p, q2).
// With statistics, the side with the smaller estimated candidate count
// wins (ties fall back to the static rule); without, the static
// CostGroup rule decides alone.
func planConjunction(pl *Planner, r1 topo.Set, ref1 geom.Rect, r2 topo.Set, ref2 geom.Rect) conjunctionPlan {
	staticSecond := swapConjunctionSets(r1, ref1, r2, ref2)
	if pl == nil {
		return conjunctionPlan{
			retrieveSecond: staticSecond,
			explain: fmt.Sprintf("plan=conjunction side=%s order=static",
				sideName(staticSecond)),
		}
	}
	e1 := pl.EstimateSet(r1, ref1)
	e2 := pl.EstimateSet(r2, ref2)
	second := staticSecond
	if e1 != e2 {
		second = e2 < e1
	}
	return conjunctionPlan{
		retrieveSecond: second,
		reordered:      second != staticSecond,
		explain: fmt.Sprintf("plan=conjunction side=%s est=[%.0f %.0f] static=%s order=%s",
			sideName(second), e1, e2, sideName(staticSecond), orderName(second != staticSecond)),
	}
}

func sideName(second bool) string {
	if second {
		return "second"
	}
	return "first"
}

func orderName(reordered bool) string {
	if reordered {
		return "planned"
	}
	return "static"
}

// swapConjunctionSets generalises swapConjunction to relation sets
// (the wire path accepts disjunctions on both terms): the cheapest
// cost group a set contains stands for the set, ties break on the
// reference MBR area exactly like the single-relation rule.
func swapConjunctionSets(r1 topo.Set, ref1 geom.Rect, r2 topo.Set, ref2 geom.Rect) bool {
	g1, g2 := costGroupSet(r1), costGroupSet(r2)
	if g1 != g2 {
		return g2 < g1
	}
	return ref2.Area() < ref1.Area()
}

// costGroupSet is the cost group of a disjunction: its most expensive
// member dominates the retrieval, so the maximum group stands in.
func costGroupSet(rels topo.Set) int {
	g := 0
	for _, r := range topo.All() {
		if rels.Has(r) && CostGroup(r) > g {
			g = CostGroup(r)
		}
	}
	return g
}

// joinSweepDensity estimates, from both sides' node-MBR statistics,
// the fraction of entry pairs inside a matched node pair that
// x-overlap — the fan-out hint the join engine's adaptive matcher
// uses to pick plane sweep or nested loop per node pair. Entries of a
// matched pair live in a window about one leaf node wide, and two
// intervals of widths w₁, w₂ dropped into a window of width s overlap
// with probability ≈ (w₁+w₂)/s. 0 (unknown) when either side lacks
// statistics, leaving the engine's size-only rule in charge.
func joinSweepDensity(left, right index.Index) float64 {
	ls := joinSideStats(left)
	rs := joinSideStats(right)
	if ls == nil || rs == nil {
		return 0
	}
	// Average leaf-node x-span per side: margin is width + height and
	// leaf nodes are near-square under the STR and R* split rules.
	span := func(st *rtree.TreeStats) float64 {
		leaf := st.Levels[0]
		if leaf.Nodes == 0 {
			return 0
		}
		return leaf.MarginSum / float64(leaf.Nodes) / 2
	}
	s := max(span(ls), span(rs))
	if s <= 0 {
		return 0
	}
	return min((ls.X.MeanExtent+rs.X.MeanExtent)/s, 1)
}

func joinSideStats(idx index.Index) *rtree.TreeStats {
	st, err := index.StatsOf(idx)
	if err != nil || st == nil || st.Samples() == 0 || len(st.Levels) == 0 {
		return nil
	}
	return st
}

// appendActual extends an explain line with the observed candidate
// count, so `-explain` output shows estimated vs actual side by side.
func appendActual(explain string, candidates int) string {
	if explain == "" {
		return ""
	}
	var b strings.Builder
	b.WriteString(explain)
	fmt.Fprintf(&b, " actual=%d", candidates)
	return b.String()
}
