package query

import (
	"math/rand"
	"sort"
	"testing"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/index"
	"mbrtopo/internal/interval"
	"mbrtopo/internal/mbr"
	"mbrtopo/internal/topo"
	"mbrtopo/internal/workload"
)

// TestBiCoverersSound: random nested interval pairs must land in the
// derived BiCoverers set (the join pruning kernel), and every member
// must be witnessed.
func TestBiCoverersSound(t *testing.T) {
	var grid []float64
	for v := -2.0; v <= 34; v += 1 {
		grid = append(grid, v)
	}
	q := interval.Interval{Lo: 10, Hi: 20}
	witnessed := map[interval.Relation]interval.Set{}
	for _, pl := range grid {
		for _, ph := range grid {
			if ph <= pl {
				continue
			}
			p := interval.Interval{Lo: pl, Hi: ph}
			r := interval.Relate(p, q)
			for _, a := range []float64{pl, pl - 1, pl - 7, pl - 40} {
				for _, b := range []float64{ph, ph + 1, ph + 7, ph + 40} {
					// Include c = a and d = b so endpoint-coincidence
					// relations (equal, starts, finishes) get witnessed.
					cs := []float64{q.Lo, q.Lo - 1, q.Lo - 7}
					if a <= q.Lo {
						cs = append(cs, a)
					}
					ds := []float64{q.Hi, q.Hi + 1, q.Hi + 7}
					if b >= q.Hi {
						ds = append(ds, b)
					}
					for _, c := range cs {
						for _, d := range ds {
							got := interval.Relate(interval.Interval{Lo: a, Hi: b}, interval.Interval{Lo: c, Hi: d})
							if !interval.BiCoverers(r).Has(got) {
								t.Fatalf("pair P=[%v %v] Q=[%v %v] relation %v not in BiCoverers(%v)",
									a, b, c, d, got, r)
							}
							witnessed[r] = witnessed[r].Add(got)
						}
					}
				}
			}
		}
	}
	for _, r := range interval.All() {
		if missing := interval.BiCoverers(r).Minus(witnessed[r]); !missing.IsEmpty() {
			t.Errorf("BiCoverers(%v): members %v never witnessed", r, missing)
		}
	}
	// BiCoverers extends one-sided Coverers.
	for _, r := range interval.All() {
		if interval.Coverers(r).Minus(interval.BiCoverers(r)) != 0 {
			t.Errorf("BiCoverers(%v) misses one-sided coverers", r)
		}
	}
}

func joinScenario(t *testing.T, seed int64, n int) (MapStore, map[uint64]geom.Rect, index.Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	store := MapStore{}
	rects := map[uint64]geom.Rect{}
	idx, err := index.NewWithPageSize(index.KindRStar, 512)
	if err != nil {
		t.Fatal(err)
	}
	for oid := uint64(1); oid <= uint64(n); oid++ {
		w := 1 + rng.Float64()*7
		h := 1 + rng.Float64()*7
		x := rng.Float64() * (100 - w)
		y := rng.Float64() * (100 - h)
		pg := workload.PolygonInRect(rng, geom.R(x, y, x+w, y+h), 5+rng.Intn(5))
		store[oid] = pg
		rects[oid] = pg.Bounds()
		if err := idx.Insert(pg.Bounds(), oid); err != nil {
			t.Fatal(err)
		}
	}
	return store, rects, idx
}

type pairKey struct{ a, b uint64 }

func sortPairs(ps []pairKey) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].a != ps[j].a {
			return ps[i].a < ps[j].a
		}
		return ps[i].b < ps[j].b
	})
}

// TestJoinTopologicalAgainstBruteForce: filter-level and refined joins
// must match the n² ground truth, for two indexes and for a self-join.
func TestJoinTopologicalAgainstBruteForce(t *testing.T) {
	lStore, lRects, lIdx := joinScenario(t, 5, 220)
	rStore, rRects, rIdx := joinScenario(t, 9, 180)

	for _, rel := range []topo.Relation{topo.Overlap, topo.Meet, topo.Inside, topo.Contains, topo.Equal} {
		rels := topo.NewSet(rel)
		// Filter-level ground truth: admissible MBR configurations.
		var wantFilter []pairKey
		for lo, lr := range lRects {
			for ro, rr := range rRects {
				if mbr.CandidatesSet(rels).Has(mbr.ConfigOf(lr, rr)) {
					wantFilter = append(wantFilter, pairKey{lo, ro})
				}
			}
		}
		res, err := JoinTopological(lIdx, rIdx, rels, JoinOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]pairKey, len(res.Pairs))
		for i, p := range res.Pairs {
			got[i] = pairKey{p.LeftOID, p.RightOID}
		}
		sortPairs(got)
		sortPairs(wantFilter)
		if len(got) != len(wantFilter) {
			t.Fatalf("%v: filter join %d pairs, want %d", rel, len(got), len(wantFilter))
		}
		for i := range got {
			if got[i] != wantFilter[i] {
				t.Fatalf("%v: pair %d mismatch", rel, i)
			}
		}
		if res.Stats.NodeAccesses == 0 {
			t.Fatalf("%v: no I/O counted", rel)
		}

		// Refined ground truth: exact relation.
		var wantExact []pairKey
		for lo, lp := range lStore {
			for ro, rp := range rStore {
				if geom.Relate(lp, rp) == rel {
					wantExact = append(wantExact, pairKey{lo, ro})
				}
			}
		}
		res, err = JoinTopological(lIdx, rIdx, rels, JoinOptions{
			LeftObjects: lStore, RightObjects: rStore,
		})
		if err != nil {
			t.Fatal(err)
		}
		got = got[:0]
		for _, p := range res.Pairs {
			got = append(got, pairKey{p.LeftOID, p.RightOID})
		}
		sortPairs(got)
		sortPairs(wantExact)
		if len(got) != len(wantExact) {
			t.Fatalf("%v: refined join %d pairs, want %d", rel, len(got), len(wantExact))
		}
		for i := range got {
			if got[i] != wantExact[i] {
				t.Fatalf("%v: refined pair %d mismatch", rel, i)
			}
		}
	}
}

// TestSelfJoin: meet pairs within one layer, with and without self
// pairs.
func TestSelfJoin(t *testing.T) {
	store, rects, idx := joinScenario(t, 13, 200)
	rels := topo.NewSet(topo.Overlap)
	res, err := JoinTopological(idx, idx, rels, JoinOptions{LeftObjects: store, RightObjects: store})
	if err != nil {
		t.Fatal(err)
	}
	var want []pairKey
	for a, pa := range store {
		for b, pb := range store {
			if a != b && geom.Relate(pa, pb) == topo.Overlap {
				want = append(want, pairKey{a, b})
			}
		}
	}
	got := make([]pairKey, len(res.Pairs))
	for i, p := range res.Pairs {
		got[i] = pairKey{p.LeftOID, p.RightOID}
		if p.LeftOID == p.RightOID {
			t.Fatal("self pair kept without KeepSelfPairs")
		}
	}
	sortPairs(got)
	sortPairs(want)
	if len(got) != len(want) {
		t.Fatalf("self-join: %d pairs, want %d", len(got), len(want))
	}

	// KeepSelfPairs + equal: every object pairs with itself.
	res, err = JoinTopological(idx, idx, topo.NewSet(topo.Equal), JoinOptions{
		LeftObjects: store, RightObjects: store, KeepSelfPairs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	selfCount := 0
	for _, p := range res.Pairs {
		if p.LeftOID == p.RightOID {
			selfCount++
		}
	}
	if selfCount != len(rects) {
		t.Fatalf("equal self-join found %d self pairs, want %d", selfCount, len(rects))
	}
}

// TestJoinPruningEffective: the synchronized join must read far fewer
// pages than nested per-object queries would.
func TestJoinPruningEffective(t *testing.T) {
	_, _, lIdx := joinScenario(t, 21, 300)
	_, _, rIdx := joinScenario(t, 22, 300)
	res, err := JoinTopological(lIdx, rIdx, topo.NewSet(topo.Inside), JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// A nested-loop strategy costs ≈ N × (tree height) reads; the join
	// must be well under half of that.
	nested := uint64(300 * lIdx.Height())
	if res.Stats.NodeAccesses*2 > nested {
		t.Fatalf("join read %d pages, nested baseline %d", res.Stats.NodeAccesses, nested)
	}
}

func TestJoinErrors(t *testing.T) {
	_, _, lIdx := joinScenario(t, 1, 30)
	rp, err := index.NewWithPageSize(index.KindRPlus, 512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := JoinTopological(lIdx, rp, topo.NewSet(topo.Overlap), JoinOptions{}); err == nil {
		t.Error("R+ join accepted")
	}
	if _, err := JoinTopological(lIdx, lIdx, topo.Set(0), JoinOptions{}); err == nil {
		t.Error("empty relation set accepted")
	}
	store, _, idx := joinScenario(t, 2, 30)
	if _, err := JoinTopological(idx, idx, topo.NewSet(topo.Overlap), JoinOptions{
		LeftObjects: store, RightObjects: MapStore{},
	}); err == nil {
		t.Error("missing right object not reported")
	}
}
