// Package query implements the paper's core contribution: the 4-step
// strategy for retrieving topological relations from MBR-based access
// methods (Section 4), extended to disjunctive queries, two-reference
// conjunctions with composition-based empty-result detection
// (Section 5), and non-crisp MBR retrieval via conceptual
// neighbourhoods (Section 6).
//
// The four steps, for "find all objects p with relation r to q":
//
//  1. Compute the MBR configurations that may enclose qualifying
//     objects (Table 1, package mbr).
//  2. Determine the acceptance test for leaf MBRs from those
//     configurations.
//  3. Prune the tree: descend only into intermediate nodes whose
//     rectangles can contain qualifying MBRs (Table 2 propagation for
//     covering node rectangles; region feasibility for R+-trees).
//  4. Refine the surviving candidates with exact computational
//     geometry — except in the configurations of Figure 9, where the
//     MBRs alone decide the relation.
package query

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/index"
	"mbrtopo/internal/mbr"
	"mbrtopo/internal/topo"
)

// ObjectStore resolves object ids to exact geometry for the
// refinement step. Objects are Regions: simple polygons (contiguous)
// or multi-polygons (the Section 7 non-contiguous extension).
type ObjectStore interface {
	// Object returns the region stored under oid.
	Object(oid uint64) (geom.Region, bool)
}

// MapStore is a trivial in-memory ObjectStore over simple polygons.
type MapStore map[uint64]geom.Polygon

// Object implements ObjectStore.
func (m MapStore) Object(oid uint64) (geom.Region, bool) {
	pg, ok := m[oid]
	return pg, ok
}

// RegionStore is an in-memory ObjectStore over arbitrary regions
// (polygons and multi-polygons).
type RegionStore map[uint64]geom.Region

// Object implements ObjectStore.
func (m RegionStore) Object(oid uint64) (geom.Region, bool) {
	r, ok := m[oid]
	return r, ok
}

// Match is one query answer (or filter-step candidate).
type Match struct {
	OID  uint64
	Rect geom.Rect
}

// Stats describes the work a query performed, in the units the paper
// reports.
type Stats struct {
	// NodeAccesses is the number of tree pages read during the filter
	// step (the paper's "disk accesses per search").
	NodeAccesses uint64
	// Candidates is the number of distinct MBRs the filter retrieved
	// (the paper's "hits per search", Table 3).
	Candidates int
	// RefinementTests counts candidates that needed exact geometry.
	RefinementTests int
	// DirectAccepts counts candidates accepted from their MBR
	// configuration alone (Figure 9).
	DirectAccepts int
	// FalseHits counts candidates rejected by refinement.
	FalseHits int
	// HullResolved counts candidates the convex-hull second filter
	// (Brinkhoff et al. 1994) resolved without an exact geometry test.
	HullResolved int
	// ShortCircuited is set when a conjunction was answered empty from
	// the composition table without touching the index (Table 4).
	ShortCircuited bool
	// Reordered is set when the cost-based planner overrode the static
	// CostGroup term order of a conjunction.
	Reordered bool
	// Explain is the human-readable plan the processor chose (term
	// order, estimated vs actual candidates, filter side), filled for
	// planned queries and surfaced by `topoquery -explain` and the
	// wire stats line.
	Explain string
}

// Result bundles matches with the query statistics.
type Result struct {
	Matches []Match
	Stats   Stats
}

// Processor executes topological queries against one access method.
type Processor struct {
	// Idx is the access method holding the object MBRs.
	Idx index.Index
	// Objects resolves exact geometry for refinement. When nil, queries
	// return filter-step candidates without refinement (the mode the
	// paper's experiments measure, since its data files contain only
	// MBRs).
	Objects ObjectStore
	// NonCrisp enables the Section 6 mode: stored MBRs may be up to two
	// conceptual-neighbourhood steps larger than crisp, so the filter
	// uses the Table 5 expanded configuration sets and every candidate
	// is refined.
	NonCrisp bool
	// NonContiguous enables the Section 7 mode: objects may consist of
	// several disconnected components, so the filter uses the relaxed
	// candidate tables (disjoint → all configurations, meet → all
	// point-sharing configurations).
	NonContiguous bool
	// SecondFilter enables the convex-hull filter step between the MBR
	// filter and exact refinement (Brinkhoff et al. 1994, cited by the
	// paper): candidates whose hull-level relation already decides
	// membership skip the exact test.
	SecondFilter bool
	// RefineWorkers bounds the worker pool of the refinement step.
	// Step 4 of the paper's strategy tests each candidate independently,
	// so it parallelises cleanly: values > 1 refine candidates on that
	// many goroutines (result order and statistics are unchanged).
	// 0 or 1 refines serially; a negative value uses GOMAXPROCS.
	RefineWorkers int
}

// refineParallelMin is the candidate count below which parallel
// refinement is not worth the goroutine setup.
const refineParallelMin = 16

// refineWorkers resolves the configured pool size.
func (p *Processor) refineWorkers() int {
	switch {
	case p.RefineWorkers < 0:
		return runtime.GOMAXPROCS(0)
	case p.RefineWorkers == 0:
		return 1
	default:
		return p.RefineWorkers
	}
}

// candidateConfigs maps a relation disjunction to the admissible MBR
// configurations under the processor's modes.
func (p *Processor) candidateConfigs(rels topo.Set) mbr.ConfigSet {
	var c mbr.ConfigSet
	if p.NonContiguous {
		c = mbr.CandidatesNonContiguousSet(rels)
	} else {
		c = mbr.CandidatesSet(rels)
	}
	if p.NonCrisp {
		c = mbr.Expand2(c)
	}
	return c
}

// possibleRelations is the mode-aware dual of Table 1.
func (p *Processor) possibleRelations(c mbr.Config) topo.Set {
	if p.NonContiguous {
		return mbr.PossibleRelationsNonContiguous(c)
	}
	return mbr.PossibleRelations(c)
}

// Query runs the 4-step retrieval for a single relation against a
// reference region given by its exact geometry (a Polygon or a
// MultiPolygon).
func (p *Processor) Query(rel topo.Relation, ref geom.Region) (Result, error) {
	return p.QueryCtx(context.Background(), rel, ref)
}

// QueryCtx is Query with context cancellation: the filter traversal
// aborts within one page read of ctx being cancelled.
func (p *Processor) QueryCtx(ctx context.Context, rel topo.Relation, ref geom.Region) (Result, error) {
	return p.QuerySetCtx(ctx, topo.NewSet(rel), ref)
}

// QueryMBR runs the filter step only, against a reference MBR — the
// setting of the paper's experiments, where the data file consists of
// rectangles. No refinement is possible without geometry.
func (p *Processor) QueryMBR(rel topo.Relation, refMBR geom.Rect) (Result, error) {
	return p.querySetMBR(context.Background(), topo.NewSet(rel), refMBR, nil)
}

// QueryMBRCtx is QueryMBR with context cancellation.
func (p *Processor) QueryMBRCtx(ctx context.Context, rel topo.Relation, refMBR geom.Rect) (Result, error) {
	return p.querySetMBR(ctx, topo.NewSet(rel), refMBR, nil)
}

// QuerySet runs a disjunctive (low-resolution) query, e.g. the
// cadastral "in" = inside ∨ covered_by of Section 5.
func (p *Processor) QuerySet(rels topo.Set, ref geom.Region) (Result, error) {
	return p.QuerySetCtx(context.Background(), rels, ref)
}

// QuerySetCtx is QuerySet with context cancellation.
func (p *Processor) QuerySetCtx(ctx context.Context, rels topo.Set, ref geom.Region) (Result, error) {
	if ref == nil {
		return Result{}, fmt.Errorf("query: nil reference region")
	}
	if err := ref.Validate(); err != nil {
		return Result{}, fmt.Errorf("query: invalid reference region: %w", err)
	}
	return p.querySetMBR(ctx, rels, ref.Bounds(), ref)
}

// QuerySetMBR runs a disjunctive filter step against a reference MBR.
func (p *Processor) QuerySetMBR(rels topo.Set, refMBR geom.Rect) (Result, error) {
	return p.querySetMBR(context.Background(), rels, refMBR, nil)
}

// QuerySetMBRCtx is QuerySetMBR with context cancellation.
func (p *Processor) QuerySetMBRCtx(ctx context.Context, rels topo.Set, refMBR geom.Rect) (Result, error) {
	return p.querySetMBR(ctx, rels, refMBR, nil)
}

func (p *Processor) querySetMBR(ctx context.Context, rels topo.Set, refMBR geom.Rect, ref geom.Region) (Result, error) {
	if rels.IsEmpty() {
		return Result{}, fmt.Errorf("query: empty relation set")
	}
	if !refMBR.Valid() {
		return Result{}, fmt.Errorf("query: degenerate reference MBR %v", refMBR)
	}
	// Step 1: admissible MBR configurations (Table 1, adjusted for the
	// non-contiguous and non-crisp modes).
	cands := p.candidateConfigs(rels)
	// Steps 2+3: prune and collect.
	matches, stats, err := p.filter(ctx, cands, refMBR)
	if err != nil {
		return Result{}, err
	}
	// Step 4: refinement.
	if p.Objects != nil && ref != nil {
		matches, err = p.refine(ctx, matches, rels, refMBR, ref, &stats)
		if err != nil {
			return Result{}, err
		}
	}
	return Result{Matches: matches, Stats: stats}, nil
}

// filterPreds derives the node and leaf predicates of steps 2 and 3.
// Both run the per-axis domination pre-test (mbr.DominationFor) ahead
// of the exact configuration probe: four sign comparisons reject most
// non-qualifying rectangles without paying the two interval decision
// trees, and the pre-test is provably sound (it never rejects a
// rectangle the exact test accepts). The R+ partition-region path
// keeps its dedicated predicate: partition regions are not tight
// MBRs, so endpoint-sign reasoning does not apply to them.
func (p *Processor) filterPreds(cands mbr.ConfigSet, refMBR geom.Rect) (nodePred, leafPred func(geom.Rect) bool) {
	if p.Idx.CoveringNodeRects() {
		prop := mbr.Propagation(cands)
		dom := mbr.DominationFor(prop)
		nodePred = func(r geom.Rect) bool {
			return dom.Admits(r, refMBR) && prop.Has(mbr.ConfigOf(r, refMBR))
		}
	} else {
		nodePred = mbr.PartitionNodePredicate(cands, refMBR)
	}
	leafDom := mbr.DominationFor(cands)
	leafPred = func(r geom.Rect) bool {
		return leafDom.Admits(r, refMBR) && cands.Has(mbr.ConfigOf(r, refMBR))
	}
	return nodePred, leafPred
}

// filter is the tree traversal of steps 2 and 3. NodeAccesses comes
// from the traversal's own accounting, so it is exact even when many
// queries share the index.
func (p *Processor) filter(ctx context.Context, cands mbr.ConfigSet, refMBR geom.Rect) ([]Match, Stats, error) {
	nodePred, leafPred := p.filterPreds(cands, refMBR)
	// A broad query (disjoint) touches nearly every stored object:
	// size the dedup set and the matches slice for the worst case once
	// instead of rehashing and regrowing on the way there.
	n := p.Idx.Len()
	seen := make(map[uint64]struct{}, n)
	matches := make([]Match, 0, n)
	ts, err := p.Idx.SearchCtx(ctx, nodePred, leafPred, func(r geom.Rect, oid uint64) bool {
		if _, ok := seen[oid]; !ok {
			seen[oid] = struct{}{}
			matches = append(matches, Match{OID: oid, Rect: r})
		}
		return true
	})
	if err != nil {
		return nil, Stats{}, fmt.Errorf("query: filter step: %w", err)
	}
	stats := Stats{
		NodeAccesses: ts.NodeAccesses,
		Candidates:   len(matches),
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].OID < matches[j].OID })
	return matches, stats, nil
}

// refineVerdict is the outcome of refining one candidate: whether it
// is a match, and which statistics counters its test touched.
type refineVerdict struct {
	accept         bool
	directAccept   bool
	hullResolved   bool
	refinementTest bool
	falseHit       bool
	missingOID     uint64
	missing        bool
}

// refineOne applies step 4 to a single candidate. It only reads
// Processor state, so verdicts for different candidates can be
// computed concurrently.
func (p *Processor) refineOne(m Match, rels topo.Set, refMBR geom.Rect, ref geom.Region, refHull geom.Polygon) refineVerdict {
	cfg := mbr.ConfigOf(m.Rect, refMBR)
	// Figure 9 generalised to disjunctions: if every relation the
	// configuration admits is wanted, accept without geometry. Not
	// applicable in non-crisp mode, where the stored MBR may be
	// larger than the true one.
	if !p.NonCrisp && p.possibleRelations(cfg).SubsetOf(rels) {
		return refineVerdict{accept: true, directAccept: true}
	}
	obj, ok := p.Objects.Object(m.OID)
	if !ok {
		return refineVerdict{missing: true, missingOID: m.OID}
	}
	if p.SecondFilter {
		poss := geom.PossibleGivenHulls(geom.Relate(geom.HullOf(obj), refHull))
		switch {
		case poss.Intersect(rels).IsEmpty():
			return refineVerdict{hullResolved: true, falseHit: true}
		case poss.SubsetOf(rels):
			return refineVerdict{accept: true, hullResolved: true}
		}
	}
	if rels.Has(geom.RelateRegions(obj, ref)) {
		return refineVerdict{accept: true, refinementTest: true}
	}
	return refineVerdict{refinementTest: true, falseHit: true}
}

// refine applies step 4 to the candidates, optionally routed through
// the convex-hull second filter. With RefineWorkers > 1 the exact
// geometry tests run on a bounded worker pool; verdicts are folded in
// candidate order, so matches and statistics are identical to the
// serial run. The ObjectStore must then be safe for concurrent reads
// (the map-backed stores are, as long as nothing mutates them).
func (p *Processor) refine(ctx context.Context, cands []Match, rels topo.Set, refMBR geom.Rect, ref geom.Region, stats *Stats) ([]Match, error) {
	var refHull geom.Polygon
	if p.SecondFilter {
		refHull = geom.HullOf(ref)
	}
	verdicts := make([]refineVerdict, len(cands))
	if workers := p.refineWorkers(); workers > 1 && len(cands) >= refineParallelMin {
		if workers > len(cands) {
			workers = len(cands)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(cands) || ctx.Err() != nil {
						return
					}
					verdicts[i] = p.refineOne(cands[i], rels, refMBR, ref, refHull)
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	} else {
		for i, m := range cands {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			verdicts[i] = p.refineOne(m, rels, refMBR, ref, refHull)
		}
	}
	out := cands[:0:0]
	for i, v := range verdicts {
		if v.missing {
			return nil, fmt.Errorf("query: refinement needs object %d, not in store", v.missingOID)
		}
		if v.directAccept {
			stats.DirectAccepts++
		}
		if v.hullResolved {
			stats.HullResolved++
		}
		if v.refinementTest {
			stats.RefinementTests++
		}
		if v.falseHit {
			stats.FalseHits++
		}
		if v.accept {
			out = append(out, cands[i])
		}
	}
	return out, nil
}
