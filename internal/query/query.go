// Package query implements the paper's core contribution: the 4-step
// strategy for retrieving topological relations from MBR-based access
// methods (Section 4), extended to disjunctive queries, two-reference
// conjunctions with composition-based empty-result detection
// (Section 5), and non-crisp MBR retrieval via conceptual
// neighbourhoods (Section 6).
//
// The four steps, for "find all objects p with relation r to q":
//
//  1. Compute the MBR configurations that may enclose qualifying
//     objects (Table 1, package mbr).
//  2. Determine the acceptance test for leaf MBRs from those
//     configurations.
//  3. Prune the tree: descend only into intermediate nodes whose
//     rectangles can contain qualifying MBRs (Table 2 propagation for
//     covering node rectangles; region feasibility for R+-trees).
//  4. Refine the surviving candidates with exact computational
//     geometry — except in the configurations of Figure 9, where the
//     MBRs alone decide the relation.
package query

import (
	"fmt"
	"sort"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/index"
	"mbrtopo/internal/mbr"
	"mbrtopo/internal/topo"
)

// ObjectStore resolves object ids to exact geometry for the
// refinement step. Objects are Regions: simple polygons (contiguous)
// or multi-polygons (the Section 7 non-contiguous extension).
type ObjectStore interface {
	// Object returns the region stored under oid.
	Object(oid uint64) (geom.Region, bool)
}

// MapStore is a trivial in-memory ObjectStore over simple polygons.
type MapStore map[uint64]geom.Polygon

// Object implements ObjectStore.
func (m MapStore) Object(oid uint64) (geom.Region, bool) {
	pg, ok := m[oid]
	return pg, ok
}

// RegionStore is an in-memory ObjectStore over arbitrary regions
// (polygons and multi-polygons).
type RegionStore map[uint64]geom.Region

// Object implements ObjectStore.
func (m RegionStore) Object(oid uint64) (geom.Region, bool) {
	r, ok := m[oid]
	return r, ok
}

// Match is one query answer (or filter-step candidate).
type Match struct {
	OID  uint64
	Rect geom.Rect
}

// Stats describes the work a query performed, in the units the paper
// reports.
type Stats struct {
	// NodeAccesses is the number of tree pages read during the filter
	// step (the paper's "disk accesses per search").
	NodeAccesses uint64
	// Candidates is the number of distinct MBRs the filter retrieved
	// (the paper's "hits per search", Table 3).
	Candidates int
	// RefinementTests counts candidates that needed exact geometry.
	RefinementTests int
	// DirectAccepts counts candidates accepted from their MBR
	// configuration alone (Figure 9).
	DirectAccepts int
	// FalseHits counts candidates rejected by refinement.
	FalseHits int
	// HullResolved counts candidates the convex-hull second filter
	// (Brinkhoff et al. 1994) resolved without an exact geometry test.
	HullResolved int
	// ShortCircuited is set when a conjunction was answered empty from
	// the composition table without touching the index (Table 4).
	ShortCircuited bool
}

// Result bundles matches with the query statistics.
type Result struct {
	Matches []Match
	Stats   Stats
}

// Processor executes topological queries against one access method.
type Processor struct {
	// Idx is the access method holding the object MBRs.
	Idx index.Index
	// Objects resolves exact geometry for refinement. When nil, queries
	// return filter-step candidates without refinement (the mode the
	// paper's experiments measure, since its data files contain only
	// MBRs).
	Objects ObjectStore
	// NonCrisp enables the Section 6 mode: stored MBRs may be up to two
	// conceptual-neighbourhood steps larger than crisp, so the filter
	// uses the Table 5 expanded configuration sets and every candidate
	// is refined.
	NonCrisp bool
	// NonContiguous enables the Section 7 mode: objects may consist of
	// several disconnected components, so the filter uses the relaxed
	// candidate tables (disjoint → all configurations, meet → all
	// point-sharing configurations).
	NonContiguous bool
	// SecondFilter enables the convex-hull filter step between the MBR
	// filter and exact refinement (Brinkhoff et al. 1994, cited by the
	// paper): candidates whose hull-level relation already decides
	// membership skip the exact test.
	SecondFilter bool
}

// candidateConfigs maps a relation disjunction to the admissible MBR
// configurations under the processor's modes.
func (p *Processor) candidateConfigs(rels topo.Set) mbr.ConfigSet {
	var c mbr.ConfigSet
	if p.NonContiguous {
		c = mbr.CandidatesNonContiguousSet(rels)
	} else {
		c = mbr.CandidatesSet(rels)
	}
	if p.NonCrisp {
		c = mbr.Expand2(c)
	}
	return c
}

// possibleRelations is the mode-aware dual of Table 1.
func (p *Processor) possibleRelations(c mbr.Config) topo.Set {
	if p.NonContiguous {
		return mbr.PossibleRelationsNonContiguous(c)
	}
	return mbr.PossibleRelations(c)
}

// Query runs the 4-step retrieval for a single relation against a
// reference region given by its exact geometry (a Polygon or a
// MultiPolygon).
func (p *Processor) Query(rel topo.Relation, ref geom.Region) (Result, error) {
	return p.QuerySet(topo.NewSet(rel), ref)
}

// QueryMBR runs the filter step only, against a reference MBR — the
// setting of the paper's experiments, where the data file consists of
// rectangles. No refinement is possible without geometry.
func (p *Processor) QueryMBR(rel topo.Relation, refMBR geom.Rect) (Result, error) {
	return p.querySetMBR(topo.NewSet(rel), refMBR, nil)
}

// QuerySet runs a disjunctive (low-resolution) query, e.g. the
// cadastral "in" = inside ∨ covered_by of Section 5.
func (p *Processor) QuerySet(rels topo.Set, ref geom.Region) (Result, error) {
	if ref == nil {
		return Result{}, fmt.Errorf("query: nil reference region")
	}
	if err := ref.Validate(); err != nil {
		return Result{}, fmt.Errorf("query: invalid reference region: %w", err)
	}
	return p.querySetMBR(rels, ref.Bounds(), ref)
}

// QuerySetMBR runs a disjunctive filter step against a reference MBR.
func (p *Processor) QuerySetMBR(rels topo.Set, refMBR geom.Rect) (Result, error) {
	return p.querySetMBR(rels, refMBR, nil)
}

func (p *Processor) querySetMBR(rels topo.Set, refMBR geom.Rect, ref geom.Region) (Result, error) {
	if rels.IsEmpty() {
		return Result{}, fmt.Errorf("query: empty relation set")
	}
	if !refMBR.Valid() {
		return Result{}, fmt.Errorf("query: degenerate reference MBR %v", refMBR)
	}
	// Step 1: admissible MBR configurations (Table 1, adjusted for the
	// non-contiguous and non-crisp modes).
	cands := p.candidateConfigs(rels)
	// Steps 2+3: prune and collect.
	matches, stats, err := p.filter(cands, refMBR)
	if err != nil {
		return Result{}, err
	}
	// Step 4: refinement.
	if p.Objects != nil && ref != nil {
		matches, err = p.refine(matches, rels, refMBR, ref, &stats)
		if err != nil {
			return Result{}, err
		}
	}
	return Result{Matches: matches, Stats: stats}, nil
}

// filter is the tree traversal of steps 2 and 3.
func (p *Processor) filter(cands mbr.ConfigSet, refMBR geom.Rect) ([]Match, Stats, error) {
	var nodePred func(geom.Rect) bool
	if p.Idx.CoveringNodeRects() {
		prop := mbr.Propagation(cands)
		nodePred = func(r geom.Rect) bool {
			return prop.Has(mbr.ConfigOf(r, refMBR))
		}
	} else {
		nodePred = mbr.PartitionNodePredicate(cands, refMBR)
	}
	leafPred := func(r geom.Rect) bool {
		return cands.Has(mbr.ConfigOf(r, refMBR))
	}

	before := p.Idx.IOStats()
	seen := make(map[uint64]bool)
	var matches []Match
	err := p.Idx.Search(nodePred, leafPred, func(r geom.Rect, oid uint64) bool {
		if !seen[oid] {
			seen[oid] = true
			matches = append(matches, Match{OID: oid, Rect: r})
		}
		return true
	})
	if err != nil {
		return nil, Stats{}, fmt.Errorf("query: filter step: %w", err)
	}
	stats := Stats{
		NodeAccesses: p.Idx.IOStats().Sub(before).Reads,
		Candidates:   len(matches),
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].OID < matches[j].OID })
	return matches, stats, nil
}

// refine applies step 4 to the candidates, optionally routed through
// the convex-hull second filter.
func (p *Processor) refine(cands []Match, rels topo.Set, refMBR geom.Rect, ref geom.Region, stats *Stats) ([]Match, error) {
	var refHull geom.Polygon
	if p.SecondFilter {
		refHull = geom.HullOf(ref)
	}
	out := cands[:0:0]
	for _, m := range cands {
		cfg := mbr.ConfigOf(m.Rect, refMBR)
		// Figure 9 generalised to disjunctions: if every relation the
		// configuration admits is wanted, accept without geometry. Not
		// applicable in non-crisp mode, where the stored MBR may be
		// larger than the true one.
		if !p.NonCrisp && p.possibleRelations(cfg).SubsetOf(rels) {
			stats.DirectAccepts++
			out = append(out, m)
			continue
		}
		obj, ok := p.Objects.Object(m.OID)
		if !ok {
			return nil, fmt.Errorf("query: refinement needs object %d, not in store", m.OID)
		}
		if p.SecondFilter {
			poss := geom.PossibleGivenHulls(geom.Relate(geom.HullOf(obj), refHull))
			switch {
			case poss.Intersect(rels).IsEmpty():
				stats.HullResolved++
				stats.FalseHits++
				continue
			case poss.SubsetOf(rels):
				stats.HullResolved++
				out = append(out, m)
				continue
			}
		}
		stats.RefinementTests++
		if rels.Has(geom.RelateRegions(obj, ref)) {
			out = append(out, m)
		} else {
			stats.FalseHits++
		}
	}
	return out, nil
}
