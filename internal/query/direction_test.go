package query

import (
	"math/rand"
	"sort"
	"testing"

	"mbrtopo/internal/direction"
	"mbrtopo/internal/geom"
	"mbrtopo/internal/index"
	"mbrtopo/internal/workload"
)

// TestQueryDirectionAllTrees compares direction retrieval with brute
// force for all thirteen relations on all access methods.
func TestQueryDirectionAllTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	rects := map[uint64]geom.Rect{}
	indexes := map[string]index.Index{}
	for oid := uint64(1); oid <= 500; oid++ {
		rects[oid] = workload.RandomRect(rng, workload.Medium)
	}
	for _, kind := range index.AllKinds() {
		idx, err := index.NewWithPageSize(kind, 512)
		if err != nil {
			t.Fatal(err)
		}
		for oid, r := range rects {
			if err := idx.Insert(r, oid); err != nil {
				t.Fatal(err)
			}
		}
		indexes[kind.String()] = idx
	}
	refs := []geom.Rect{
		workload.RandomRect(rng, workload.Large),
		geom.R(450, 450, 520, 530),
		geom.R(10, 900, 120, 980),
	}
	brute := func(rel direction.Relation, q geom.Rect) []uint64 {
		var out []uint64
		for oid, r := range rects {
			if direction.Holds(rel, r, q) {
				out = append(out, oid)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for name, idx := range indexes {
		proc := &Processor{Idx: idx}
		for _, q := range refs {
			for _, rel := range direction.All() {
				res, err := proc.QueryDirection(rel, q)
				if err != nil {
					t.Fatalf("%s %v: %v", name, rel, err)
				}
				want := brute(rel, q)
				if !eqU64(oids(res.Matches), want) {
					t.Fatalf("%s %v: got %d, want %d", name, rel, len(res.Matches), len(want))
				}
				if res.Stats.RefinementTests != 0 {
					t.Fatalf("%s %v: direction query refined", name, rel)
				}
			}
		}
	}
}

// TestQueryDirectionTilesPartitionResults: over any reference, the
// nine tiles partition the whole data set.
func TestQueryDirectionTilesPartitionResults(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	idx, err := index.NewWithPageSize(index.KindRStar, 512)
	if err != nil {
		t.Fatal(err)
	}
	n := 300
	for oid := uint64(1); oid <= uint64(n); oid++ {
		if err := idx.Insert(workload.RandomRect(rng, workload.Small), oid); err != nil {
			t.Fatal(err)
		}
	}
	proc := &Processor{Idx: idx}
	q := geom.R(400, 400, 600, 600)
	seen := map[uint64]int{}
	for _, rel := range direction.Tiles() {
		res, err := proc.QueryDirection(rel, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range res.Matches {
			seen[m.OID]++
		}
	}
	if len(seen) != n {
		t.Fatalf("tiles cover %d of %d objects", len(seen), n)
	}
	for oid, k := range seen {
		if k != 1 {
			t.Fatalf("oid %d in %d tiles", oid, k)
		}
	}
}

func TestQueryDirectionErrors(t *testing.T) {
	idx, _ := index.NewWithPageSize(index.KindRTree, 512)
	proc := &Processor{Idx: idx}
	if _, err := proc.QueryDirection(direction.Relation(99), geom.R(0, 0, 1, 1)); err == nil {
		t.Error("invalid relation accepted")
	}
	if _, err := proc.QueryDirection(direction.North, geom.R(1, 1, 1, 2)); err == nil {
		t.Error("degenerate reference accepted")
	}
}
