package query

import (
	"context"
	"fmt"

	"mbrtopo/internal/geom"
)

// QueryPoint finds all stored objects whose region contains the point
// (strictly inside, on the boundary, or both, per want). The filter
// step descends into nodes and accepts MBRs containing the point; the
// refinement classifies the point against the exact geometry. This is
// the point-data query of the paper's Section 7 seen from the region
// side ("which districts is this facility in?").
//
// want must contain geom.PointInside, geom.PointOnBoundary, or both.
func (p *Processor) QueryPoint(pt geom.Point, want ...geom.PointLocation) (Result, error) {
	return p.QueryPointCtx(context.Background(), pt, want...)
}

// QueryPointCtx is QueryPoint with context cancellation.
func (p *Processor) QueryPointCtx(ctx context.Context, pt geom.Point, want ...geom.PointLocation) (Result, error) {
	if p.Objects == nil {
		return Result{}, fmt.Errorf("query: point queries need an ObjectStore for refinement")
	}
	accept := map[geom.PointLocation]bool{}
	for _, w := range want {
		if w != geom.PointInside && w != geom.PointOnBoundary {
			return Result{}, fmt.Errorf("query: point queries accept inside/boundary, got %v", w)
		}
		accept[w] = true
	}
	if len(accept) == 0 {
		accept[geom.PointInside] = true
		accept[geom.PointOnBoundary] = true
	}

	pred := func(r geom.Rect) bool { return r.ContainsPoint(pt) }
	seen := make(map[uint64]struct{})
	var matches []Match
	ts, err := p.Idx.SearchCtx(ctx, pred, pred, func(r geom.Rect, oid uint64) bool {
		if _, ok := seen[oid]; !ok {
			seen[oid] = struct{}{}
			matches = append(matches, Match{OID: oid, Rect: r})
		}
		return true
	})
	if err != nil {
		return Result{}, fmt.Errorf("query: point filter: %w", err)
	}
	stats := Stats{
		NodeAccesses: ts.NodeAccesses,
		Candidates:   len(matches),
	}
	out := matches[:0:0]
	for _, m := range matches {
		obj, ok := p.Objects.Object(m.OID)
		if !ok {
			return Result{}, fmt.Errorf("query: refinement needs object %d, not in store", m.OID)
		}
		stats.RefinementTests++
		if accept[obj.LocatePoint(pt)] {
			out = append(out, m)
		} else {
			stats.FalseHits++
		}
	}
	return Result{Matches: out, Stats: stats}, nil
}
