package query

import (
	"testing"

	"mbrtopo/internal/topo"
)

// TestSecondFilterCorrectAndEffective: with the convex-hull second
// filter the results stay exactly the brute-force answers, the
// accounting identity extends (candidates = direct + hull-resolved +
// exact tests), and the exact-test count drops for at least one
// relation.
func TestSecondFilterCorrectAndEffective(t *testing.T) {
	sc := buildScenario(t, 47, 450)
	ref := sc.objects[5]
	plain := &Processor{Idx: sc.indexes["R-tree"], Objects: sc.objects}
	hulled := &Processor{Idx: sc.indexes["R-tree"], Objects: sc.objects, SecondFilter: true}

	totalResolved := 0
	for _, rel := range topo.All() {
		want := sc.bruteForce(topo.NewSet(rel), ref)
		res, err := hulled.Query(rel, ref)
		if err != nil {
			t.Fatal(err)
		}
		if !eqU64(oids(res.Matches), want) {
			t.Fatalf("%v: second filter changed results: %d vs %d", rel, len(res.Matches), len(want))
		}
		s := res.Stats
		if s.Candidates != s.DirectAccepts+s.HullResolved+s.RefinementTests {
			t.Fatalf("%v: accounting broken: %+v", rel, s)
		}
		plainRes, err := plain.Query(rel, ref)
		if err != nil {
			t.Fatal(err)
		}
		if s.RefinementTests > plainRes.Stats.RefinementTests {
			t.Fatalf("%v: second filter increased exact tests (%d > %d)",
				rel, s.RefinementTests, plainRes.Stats.RefinementTests)
		}
		totalResolved += s.HullResolved
	}
	if totalResolved == 0 {
		t.Fatal("the hull filter never resolved a candidate")
	}
}

// TestSecondFilterDisjunction: hull resolution also applies to
// low-resolution queries.
func TestSecondFilterDisjunction(t *testing.T) {
	sc := buildScenario(t, 8, 300)
	ref := sc.objects[9]
	hulled := &Processor{Idx: sc.indexes["R*-tree"], Objects: sc.objects, SecondFilter: true}
	res, err := hulled.QuerySet(topo.In, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := sc.bruteForce(topo.In, ref)
	if !eqU64(oids(res.Matches), want) {
		t.Fatalf("in-query with second filter: %d vs %d", len(res.Matches), len(want))
	}
}
