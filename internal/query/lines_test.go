package query

import (
	"math/rand"
	"sort"
	"testing"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/index"
	"mbrtopo/internal/workload"
)

// buildLineScenario generates random roads (polylines) and loads their
// MBRs into all three access methods.
func buildLineScenario(t *testing.T, seed int64, n int) (LineStore, map[string]index.Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	lines := LineStore{}
	for oid := uint64(1); oid <= uint64(n); {
		segs := 2 + rng.Intn(4)
		pl := make(geom.PolyLine, segs+1)
		x := rng.Float64() * 90
		y := rng.Float64() * 90
		for j := range pl {
			pl[j] = geom.Point{X: x, Y: y}
			x += (rng.Float64() - 0.3) * 8
			y += (rng.Float64() - 0.3) * 8
		}
		if pl.Validate() != nil || !pl.Bounds().Valid() {
			continue
		}
		lines[oid] = pl
		oid++
	}
	indexes := map[string]index.Index{}
	for _, kind := range index.AllKinds() {
		idx, err := index.NewWithPageSize(kind, 512)
		if err != nil {
			t.Fatal(err)
		}
		for oid, pl := range lines {
			if err := idx.Insert(pl.Bounds(), oid); err != nil {
				t.Fatal(err)
			}
		}
		indexes[kind.String()] = idx
	}
	return lines, indexes
}

// TestQueryLineAllRelationsAllTrees: line retrieval must match brute
// force for every line-region relation on every access method.
func TestQueryLineAllRelationsAllTrees(t *testing.T) {
	lines, indexes := buildLineScenario(t, 99, 400)
	rng := rand.New(rand.NewSource(1))
	refs := []geom.Region{
		workload.PolygonInRect(rng, geom.R(20, 20, 60, 60), 8),
		geom.R(30, 30, 45, 50).Polygon(),
		geom.MultiPolygon{
			geom.R(10, 10, 25, 25).Polygon(),
			geom.R(60, 60, 80, 80).Polygon(),
		},
	}
	brute := func(rel geom.LineRegionRelation, ref geom.Region) []uint64 {
		var out []uint64
		for oid, pl := range lines {
			if got, _ := geom.RelateLineRegion(pl, ref); got == rel {
				out = append(out, oid)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for name, idx := range indexes {
		proc := &Processor{Idx: idx}
		for _, ref := range refs {
			for _, rel := range geom.AllLineRegionRelations() {
				res, err := proc.QueryLine(rel, ref, lines)
				if err != nil {
					t.Fatalf("%s %v: %v", name, rel, err)
				}
				want := brute(rel, ref)
				if !eqU64(oids(res.Matches), want) {
					t.Fatalf("%s %v: got %d matches, want %d", name, rel, len(res.Matches), len(want))
				}
			}
		}
	}
}

// TestQueryLinePaddedDegenerate: an axis-aligned road has a degenerate
// MBR; padding it and querying in NonCrisp mode must still find it.
func TestQueryLinePaddedDegenerate(t *testing.T) {
	road := geom.PolyLine{{X: 10, Y: 20}, {X: 40, Y: 20}} // horizontal
	ref := geom.R(0, 0, 50, 50).Polygon()
	if got, _ := geom.RelateLineRegion(road, ref); got != geom.LRWithin {
		t.Fatalf("fixture: %v", got)
	}
	idx, err := index.NewWithPageSize(index.KindRTree, 512)
	if err != nil {
		t.Fatal(err)
	}
	padded := road.Bounds().Grow(1e-9)
	if err := idx.Insert(padded, 1); err != nil {
		t.Fatal(err)
	}
	lines := LineStore{1: road}
	crisp := &Processor{Idx: idx}
	res, err := crisp.QueryLine(geom.LRWithin, ref, lines)
	if err != nil {
		t.Fatal(err)
	}
	// Padding keeps R9_9 here (pad ≪ distances), so the crisp filter
	// already finds it; the tolerant mode must too, with refinement.
	tolerant := &Processor{Idx: idx, NonCrisp: true}
	res2, err := tolerant.QueryLine(geom.LRWithin, ref, lines)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || len(res2.Matches) != 1 {
		t.Fatalf("crisp %d, tolerant %d matches", len(res.Matches), len(res2.Matches))
	}
	if res2.Stats.DirectAccepts != 0 {
		t.Fatal("tolerant mode must refine everything")
	}
}

func TestQueryLineErrors(t *testing.T) {
	lines, indexes := buildLineScenario(t, 2, 20)
	proc := &Processor{Idx: indexes["R-tree"]}
	if _, err := proc.QueryLine(geom.LineRegionRelation(99), geom.R(0, 0, 1, 1).Polygon(), lines); err == nil {
		t.Error("invalid relation accepted")
	}
	if _, err := proc.QueryLine(geom.LRCross, nil, lines); err == nil {
		t.Error("nil reference accepted")
	}
	if _, err := proc.QueryLine(geom.LRCross, geom.Polygon{{X: 0, Y: 0}, {X: 1, Y: 0}}, lines); err == nil {
		t.Error("invalid reference accepted")
	}
	if _, err := proc.QueryLine(geom.LRDisjoint, geom.R(0, 0, 200, 200).Polygon(), LineStore{}); err == nil {
		t.Error("missing line in store not reported")
	}
}
