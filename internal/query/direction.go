package query

import (
	"context"
	"fmt"

	"mbrtopo/internal/direction"
	"mbrtopo/internal/geom"
	"mbrtopo/internal/mbr"
)

// QueryDirection finds all stored rectangles standing in the given
// direction relation to the reference MBR. Direction relations are
// defined on the MBRs themselves (the companion-paper machinery), so
// the filter step is exact and no geometric refinement runs; in
// NonCrisp mode the candidate set is widened by the usual 2-degree
// neighbourhoods and results become conservative (a superset).
func (p *Processor) QueryDirection(rel direction.Relation, refMBR geom.Rect) (Result, error) {
	return p.QueryDirectionCtx(context.Background(), rel, refMBR)
}

// QueryDirectionCtx is QueryDirection with context cancellation.
func (p *Processor) QueryDirectionCtx(ctx context.Context, rel direction.Relation, refMBR geom.Rect) (Result, error) {
	if !rel.Valid() {
		return Result{}, fmt.Errorf("query: invalid direction relation %v", rel)
	}
	if !refMBR.Valid() {
		return Result{}, fmt.Errorf("query: degenerate reference MBR %v", refMBR)
	}
	cands := direction.Candidates(rel)
	if p.NonCrisp {
		cands = mbr.Expand2(cands)
	}
	matches, stats, err := p.filter(ctx, cands, refMBR)
	if err != nil {
		return Result{}, err
	}
	stats.DirectAccepts = stats.Candidates
	return Result{Matches: matches, Stats: stats}, nil
}
