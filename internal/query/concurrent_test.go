package query

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/topo"
)

// concurrentOp is one operation of the mixed workload: it runs a
// query against the scenario and returns the per-query NodeAccesses
// together with a result fingerprint for equality checks.
type concurrentOp struct {
	name string
	run  func(p *Processor, sc *scenario) (uint64, string, error)
}

func mixedOps(rng *rand.Rand) []concurrentOp {
	var ops []concurrentOp
	rels := []topo.Relation{topo.Overlap, topo.Meet, topo.Inside, topo.Covers, topo.Disjoint}
	for i := 0; i < 12; i++ {
		i := i
		w := 4 + rng.Float64()*20
		h := 4 + rng.Float64()*20
		x := rng.Float64() * (100 - w)
		y := rng.Float64() * (100 - h)
		win := geom.R(x, y, x+w, y+h)
		switch i % 3 {
		case 0:
			rel := rels[i%len(rels)]
			ops = append(ops, concurrentOp{
				name: fmt.Sprintf("querymbr-%d", i),
				run: func(p *Processor, sc *scenario) (uint64, string, error) {
					res, err := p.QueryMBR(rel, win)
					return res.Stats.NodeAccesses, fingerprint(res.Matches), err
				},
			})
		case 1:
			rel := rels[(i+2)%len(rels)]
			ops = append(ops, concurrentOp{
				name: fmt.Sprintf("query-%d", i),
				run: func(p *Processor, sc *scenario) (uint64, string, error) {
					ref, ok := sc.objects[uint64(1+i%len(sc.objects))]
					if !ok {
						return 0, "", fmt.Errorf("missing reference object")
					}
					res, err := p.Query(rel, ref)
					return res.Stats.NodeAccesses, fingerprint(res.Matches), err
				},
			})
		default:
			pt := geom.Point{X: x, Y: y}
			k := 1 + i%7
			ops = append(ops, concurrentOp{
				name: fmt.Sprintf("nearest-%d", i),
				run: func(p *Processor, sc *scenario) (uint64, string, error) {
					nn, ts, err := p.Idx.NearestCtx(context.Background(), pt, k)
					fp := ""
					for _, nb := range nn {
						fp += fmt.Sprintf("%d;", nb.OID)
					}
					return ts.NodeAccesses, fp, err
				},
			})
		}
	}
	return ops
}

func fingerprint(ms []Match) string {
	out := ""
	for _, m := range ms {
		out += fmt.Sprintf("%d;", m.OID)
	}
	return out
}

// TestConcurrentQueriesExactStats runs a mixed workload of 8
// goroutines against one shared index per variant and requires every
// query's NodeAccesses (and results) to equal its serial value — the
// point of per-traversal accounting. Run under -race this also proves
// the read path is data-race free.
func TestConcurrentQueriesExactStats(t *testing.T) {
	sc := buildScenario(t, 99, 500)
	ops := mixedOps(rand.New(rand.NewSource(42)))
	for name, idx := range sc.indexes {
		t.Run(name, func(t *testing.T) {
			proc := &Processor{Idx: idx, Objects: sc.objects}

			// Serial ground truth per operation.
			wantAccess := make([]uint64, len(ops))
			wantFP := make([]string, len(ops))
			for i, op := range ops {
				acc, fp, err := op.run(proc, sc)
				if err != nil {
					t.Fatalf("%s serial: %v", op.name, err)
				}
				wantAccess[i], wantFP[i] = acc, fp
			}

			// 8 goroutines, each running the whole mixed workload.
			const goroutines = 8
			errs := make(chan error, goroutines*len(ops))
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i, op := range ops {
						acc, fp, err := op.run(proc, sc)
						if err != nil {
							errs <- fmt.Errorf("g%d %s: %w", g, op.name, err)
							return
						}
						if acc != wantAccess[i] {
							errs <- fmt.Errorf("g%d %s: NodeAccesses %d under concurrency, %d serially",
								g, op.name, acc, wantAccess[i])
							return
						}
						if fp != wantFP[i] {
							errs <- fmt.Errorf("g%d %s: results diverged under concurrency", g, op.name)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestConcurrentQueriesWithWriter interleaves readers with a writer to
// exercise the RWMutex write path (results may legitimately change
// mid-stream, so only errors are checked).
func TestConcurrentQueriesWithWriter(t *testing.T) {
	sc := buildScenario(t, 7, 300)
	for name, idx := range sc.indexes {
		t.Run(name, func(t *testing.T) {
			proc := &Processor{Idx: idx}
			var wg sync.WaitGroup
			errs := make(chan error, 9)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					win := geom.R(float64(g*3), 10, float64(g*3+20), 60)
					for i := 0; i < 20; i++ {
						if _, err := proc.QueryMBR(topo.Overlap, win); err != nil {
							errs <- err
							return
						}
					}
				}(g)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 40; i++ {
					oid := uint64(10000 + i)
					r := geom.R(float64(i), float64(i), float64(i)+3, float64(i)+3)
					if err := idx.Insert(r, oid); err != nil {
						errs <- err
						return
					}
					if err := idx.Delete(r, oid); err != nil {
						errs <- err
						return
					}
				}
			}()
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestQueryCtxCancellation requires an already-cancelled query to fail
// with context.Canceled without touching results.
func TestQueryCtxCancellation(t *testing.T) {
	sc := buildScenario(t, 3, 200)
	for name, idx := range sc.indexes {
		proc := &Processor{Idx: idx}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := proc.QueryMBRCtx(ctx, topo.Overlap, geom.R(0, 0, 100, 100))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: want context.Canceled, got %v", name, err)
		}
	}
}

// TestParallelRefineMatchesSerial pins the worker-pool refinement to
// the serial implementation: same matches, same statistics.
func TestParallelRefineMatchesSerial(t *testing.T) {
	sc := buildScenario(t, 11, 400)
	ref := sc.objects[uint64(5)]
	for name, idx := range sc.indexes {
		serial := &Processor{Idx: idx, Objects: sc.objects}
		par := &Processor{Idx: idx, Objects: sc.objects, RefineWorkers: 4}
		for _, rel := range []topo.Relation{topo.Overlap, topo.Disjoint, topo.Meet} {
			want, err := serial.Query(rel, ref)
			if err != nil {
				t.Fatalf("%s/%v serial: %v", name, rel, err)
			}
			got, err := par.Query(rel, ref)
			if err != nil {
				t.Fatalf("%s/%v parallel: %v", name, rel, err)
			}
			if fingerprint(got.Matches) != fingerprint(want.Matches) {
				t.Errorf("%s/%v: parallel refinement changed the matches", name, rel)
			}
			if got.Stats != want.Stats {
				t.Errorf("%s/%v: parallel stats %+v, serial %+v", name, rel, got.Stats, want.Stats)
			}
		}
	}
}

// TestCursorStreaming exercises the pull-based cursor: full drain
// equals the batch query, a limit stops the traversal early, Close
// releases an unfinished cursor.
func TestCursorStreaming(t *testing.T) {
	sc := buildScenario(t, 21, 400)
	rels := topo.NewSet(topo.Overlap)
	win := geom.R(20, 20, 70, 70)
	for name, idx := range sc.indexes {
		proc := &Processor{Idx: idx}
		batch, err := proc.QuerySetMBR(rels, win)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		// Full drain: same OID set as the batch query (order differs —
		// streaming is tree order).
		cur := proc.OpenCursor(context.Background(), rels, win, 0)
		got := map[uint64]bool{}
		for cur.Next() {
			got[cur.Match().OID] = true
		}
		if err := cur.Err(); err != nil {
			t.Fatalf("%s: cursor: %v", name, err)
		}
		if len(got) != len(batch.Matches) {
			t.Errorf("%s: cursor streamed %d matches, batch found %d", name, len(got), len(batch.Matches))
		}
		for _, m := range batch.Matches {
			if !got[m.OID] {
				t.Errorf("%s: cursor missed oid %d", name, m.OID)
			}
		}
		if s := cur.Stats(); s.NodeAccesses != batch.Stats.NodeAccesses {
			t.Errorf("%s: cursor accesses %d, batch %d", name, s.NodeAccesses, batch.Stats.NodeAccesses)
		}

		// Limit stops the traversal after n matches with less IO.
		if len(batch.Matches) > 4 {
			cur := proc.OpenCursor(context.Background(), rels, win, 3)
			n := 0
			for cur.Next() {
				n++
			}
			if err := cur.Err(); err != nil {
				t.Fatalf("%s: limited cursor: %v", name, err)
			}
			if n != 3 {
				t.Errorf("%s: limit 3 streamed %d matches", name, n)
			}
			if s := cur.Stats(); s.NodeAccesses >= batch.Stats.NodeAccesses && batch.Stats.NodeAccesses > 3 {
				t.Errorf("%s: limited cursor read %d pages, full traversal %d",
					name, s.NodeAccesses, batch.Stats.NodeAccesses)
			}
		}

		// Close mid-stream releases the producer.
		cur = proc.OpenCursor(context.Background(), rels, win, 0)
		if len(batch.Matches) > 0 && !cur.Next() {
			t.Fatalf("%s: cursor empty, batch had %d", name, len(batch.Matches))
		}
		cur.Close()
		if err := cur.Err(); err != nil {
			t.Errorf("%s: closed cursor reports %v", name, err)
		}
	}
}

// TestMatchesIterator exercises the range-over-func adapter, including
// early break.
func TestMatchesIterator(t *testing.T) {
	sc := buildScenario(t, 23, 300)
	rels := topo.NewSet(topo.Overlap)
	win := geom.R(10, 10, 80, 80)
	for name, idx := range sc.indexes {
		proc := &Processor{Idx: idx}
		batch, err := proc.QuerySetMBR(rels, win)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n := 0
		for _, err := range proc.Matches(context.Background(), rels, win, 0) {
			if err != nil {
				t.Fatalf("%s: iterator: %v", name, err)
			}
			n++
		}
		if n != len(batch.Matches) {
			t.Errorf("%s: iterator yielded %d, batch %d", name, n, len(batch.Matches))
		}
		// Early break must not panic or leak.
		for range proc.Matches(context.Background(), rels, win, 0) {
			break
		}
	}
}
