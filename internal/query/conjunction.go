package query

import (
	"context"
	"fmt"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/mbr"
	"mbrtopo/internal/topo"
)

// This file implements the paper's Section 5 conjunction queries:
// "find all p with r1(p, q1) and r2(p, q2)" for two reference objects.
//
// Processing order, as the paper prescribes:
//
//  1. Examine the relation between the reference objects. If it lies
//     in the Table 4 entry for (r1, r2) — the complement of the
//     composition r1˘ ∘ r2 — the result is provably empty and no disk
//     access happens.
//  2. Otherwise retrieve ONE of the two relations through the index,
//     choosing the cheaper side: the cost group of the relation first
//     (equal/covers/contains cheapest, disjoint most expensive), the
//     size of the reference MBR as tie-breaker (retrieval cost grows
//     with the data size).
//  3. Filter the retrieved candidates against the other reference in
//     main memory (their MBR configuration must be admissible for the
//     other relation), then refine both predicates with exact geometry.

// CostGroup returns the paper's retrieval cost group of a relation:
// 0 for {equal, covers, contains} (cheapest), 1 for {meet, overlap,
// inside, covered_by}, 2 for {disjoint} (serial-scan territory).
func CostGroup(r topo.Relation) int {
	switch r {
	case topo.Equal, topo.Covers, topo.Contains:
		return 0
	case topo.Disjoint:
		return 2
	default:
		return 1
	}
}

// QueryConjunction answers r1(p, q1) ∧ r2(p, q2).
func (p *Processor) QueryConjunction(r1 topo.Relation, q1 geom.Region, r2 topo.Relation, q2 geom.Region) (Result, error) {
	return p.QueryConjunctionCtx(context.Background(), r1, q1, r2, q2)
}

// QueryConjunctionCtx is QueryConjunction with context cancellation.
func (p *Processor) QueryConjunctionCtx(ctx context.Context, r1 topo.Relation, q1 geom.Region, r2 topo.Relation, q2 geom.Region) (Result, error) {
	if p.Objects == nil {
		return Result{}, fmt.Errorf("query: conjunction needs an ObjectStore for refinement")
	}
	if q1 == nil || q2 == nil {
		return Result{}, fmt.Errorf("query: nil reference region")
	}
	if err := q1.Validate(); err != nil {
		return Result{}, fmt.Errorf("query: reference q1: %w", err)
	}
	if err := q2.Validate(); err != nil {
		return Result{}, fmt.Errorf("query: reference q2: %w", err)
	}

	// Step 1: semantic optimisation via the composition table.
	refRel := geom.RelateRegions(q1, q2)
	if !topo.ConsistentConjunction(r1, r2, refRel) {
		return Result{Stats: Stats{ShortCircuited: true}}, nil
	}

	// Step 2: pick the cheaper side for the index retrieval. With
	// node-MBR statistics available, the planner's selectivity
	// estimates decide; otherwise the paper's static CostGroup rule.
	plan := planConjunction(PlannerFor(p.Idx),
		topo.NewSet(r1), q1.Bounds(), topo.NewSet(r2), q2.Bounds())
	first, firstRef, second, secondRef := r1, q1, r2, q2
	if plan.retrieveSecond {
		first, firstRef, second, secondRef = r2, q2, r1, q1
	}

	// Filter through the index on the first relation.
	firstMBR := firstRef.Bounds()
	cands := p.candidateConfigs(topo.NewSet(first))
	matches, stats, err := p.filter(ctx, cands, firstMBR)
	if err != nil {
		return Result{}, err
	}
	stats.Reordered = plan.reordered
	stats.Explain = appendActual(plan.explain, stats.Candidates)

	// Step 3: in-memory MBR filter against the second reference, then
	// exact refinement of both predicates.
	secondMBR := secondRef.Bounds()
	secondCands := p.candidateConfigs(topo.NewSet(second))
	var out []Match
	for _, m := range matches {
		if !secondCands.Has(mbr.ConfigOf(m.Rect, secondMBR)) {
			continue
		}
		obj, ok := p.Objects.Object(m.OID)
		if !ok {
			return Result{}, fmt.Errorf("query: refinement needs object %d, not in store", m.OID)
		}
		stats.RefinementTests++
		if geom.RelateRegions(obj, firstRef) == first && geom.RelateRegions(obj, secondRef) == second {
			out = append(out, m)
		} else {
			stats.FalseHits++
		}
	}
	return Result{Matches: out, Stats: stats}, nil
}

// swapConjunction reports whether the second relation should be the
// one retrieved through the index.
func swapConjunction(r1 topo.Relation, q1 geom.Region, r2 topo.Relation, q2 geom.Region) bool {
	g1, g2 := CostGroup(r1), CostGroup(r2)
	if g1 != g2 {
		return g2 < g1
	}
	// Same group: prefer the smaller reference MBR (the paper: "if the
	// sizes of the reference MBRs are considerably different, then the
	// smallest reference MBR must be selected").
	return q2.Bounds().Area() < q1.Bounds().Area()
}
