package query

import (
	"context"
	"fmt"
	"iter"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/mbr"
	"mbrtopo/internal/topo"
)

// This file is the streaming face of the 4-step strategy: instead of
// materialising a Result, matches are delivered one by one, and the
// traversal stops as soon as the consumer has seen enough. Streaming
// queries run the filter step only (like QueryMBR) — refinement needs
// the full candidate set ordering, so geometric queries keep the batch
// API.

// Stream runs the filter step for a disjunctive relation set against a
// reference MBR, calling yield for each distinct candidate as the
// traversal finds it (tree order, not OID order). Returning false from
// yield stops the traversal immediately; limit > 0 additionally caps
// the number of matches delivered. The returned Stats cover exactly
// the pages this traversal read before it stopped.
//
// On cancellation Stream returns ctx.Err() together with the stats
// accumulated so far.
func (p *Processor) Stream(ctx context.Context, rels topo.Set, refMBR geom.Rect, limit int, yield func(Match) bool) (Stats, error) {
	if rels.IsEmpty() {
		return Stats{}, fmt.Errorf("query: empty relation set")
	}
	if !refMBR.Valid() {
		return Stats{}, fmt.Errorf("query: degenerate reference MBR %v", refMBR)
	}
	return p.streamConfigs(ctx, p.candidateConfigs(rels), refMBR, limit, yield)
}

// StreamConfigs streams the filter step for an explicit admissible
// configuration set (e.g. a direction relation's candidates, which are
// exact on MBRs, so streamed matches are final answers).
func (p *Processor) StreamConfigs(ctx context.Context, cands mbr.ConfigSet, refMBR geom.Rect, limit int, yield func(Match) bool) (Stats, error) {
	if !refMBR.Valid() {
		return Stats{}, fmt.Errorf("query: degenerate reference MBR %v", refMBR)
	}
	return p.streamConfigs(ctx, cands, refMBR, limit, yield)
}

func (p *Processor) streamConfigs(ctx context.Context, cands mbr.ConfigSet, refMBR geom.Rect, limit int, yield func(Match) bool) (Stats, error) {
	nodePred, leafPred := p.filterPreds(cands, refMBR)
	seen := make(map[uint64]struct{})
	emitted := 0
	ts, err := p.Idx.SearchCtx(ctx, nodePred, leafPred, func(r geom.Rect, oid uint64) bool {
		if _, ok := seen[oid]; ok {
			return true
		}
		seen[oid] = struct{}{}
		if !yield(Match{OID: oid, Rect: r}) {
			return false
		}
		emitted++
		return limit <= 0 || emitted < limit
	})
	stats := Stats{NodeAccesses: ts.NodeAccesses, Candidates: emitted}
	if err != nil {
		return stats, fmt.Errorf("query: stream: %w", err)
	}
	return stats, nil
}

// Matches returns the streaming filter step as an iterator, for
// range-over-func consumers:
//
//	for m, err := range p.Matches(ctx, rels, refMBR, 0) {
//	    if err != nil { ... }
//	    use(m)
//	}
//
// A non-nil error, if any, is the final pair's second value (with a
// zero Match). Breaking out of the loop stops the traversal.
func (p *Processor) Matches(ctx context.Context, rels topo.Set, refMBR geom.Rect, limit int) iter.Seq2[Match, error] {
	return func(yield func(Match, error) bool) {
		stopped := false
		_, err := p.Stream(ctx, rels, refMBR, limit, func(m Match) bool {
			if !yield(m, nil) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil && !stopped {
			yield(Match{}, err)
		}
	}
}

// Cursor is a pull-based view of a streaming query. It runs the
// traversal in a background goroutine with a small buffer; Next blocks
// for the next match. Close releases the goroutine early (it is safe,
// and required, to call Close when abandoning a cursor before
// exhaustion; closing an exhausted cursor is a no-op).
type Cursor struct {
	ch     chan Match
	cancel context.CancelFunc
	done   chan struct{}

	cur   Match
	stats Stats
	err   error
}

// cursorBuffer decouples the producing traversal from the consumer; a
// small constant keeps at most a handful of matches in flight.
const cursorBuffer = 16

// OpenCursor starts a streaming filter-step query and returns a cursor
// over its matches. The traversal runs concurrently with consumption
// and stops when the cursor is closed, the limit is reached, or ctx is
// cancelled.
func (p *Processor) OpenCursor(ctx context.Context, rels topo.Set, refMBR geom.Rect, limit int) *Cursor {
	ctx, cancel := context.WithCancel(ctx)
	c := &Cursor{
		ch:     make(chan Match, cursorBuffer),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go func() {
		defer close(c.done)
		defer close(c.ch)
		stats, err := p.Stream(ctx, rels, refMBR, limit, func(m Match) bool {
			select {
			case c.ch <- m:
				return true
			case <-ctx.Done():
				return false
			}
		})
		c.stats = stats
		if err != nil && ctx.Err() == nil {
			c.err = err
		}
	}()
	return c
}

// Next advances to the next match, reporting false at end of stream
// (exhaustion, error, limit, or Close). After false, Err and Stats are
// final.
func (c *Cursor) Next() bool {
	m, ok := <-c.ch
	if !ok {
		return false
	}
	c.cur = m
	return true
}

// Match returns the match Next advanced to.
func (c *Cursor) Match() Match { return c.cur }

// Err returns the traversal error, if any, once the stream has ended.
// A cursor stopped by Close or context cancellation reports nil.
func (c *Cursor) Err() error {
	<-c.done
	return c.err
}

// Stats returns the traversal statistics; it blocks until the
// producing traversal has finished (call after Next returns false, or
// after Close).
func (c *Cursor) Stats() Stats {
	<-c.done
	return c.stats
}

// Close stops the traversal and releases its goroutine. Safe to call
// multiple times and concurrently with Next.
func (c *Cursor) Close() {
	c.cancel()
	// Drain so the producer is never stuck sending.
	for range c.ch {
	}
	<-c.done
}
