package query

import (
	"context"
	"fmt"
	"testing"

	"mbrtopo/internal/index"
	"mbrtopo/internal/topo"
	"mbrtopo/internal/workload"
)

// This file is the differential gate for the sweep/parallel join: on
// uniform and clustered workloads, across R-tree and R*-tree, for
// every relation of mt2 plus a non-contiguous set, the parallel sweep
// join, the serial join, and the legacy naive-reads engine must all
// produce exactly the pair set that per-object QuerySetMBRCtx loops
// produce — and the parallel run's statistics must equal the serial
// run's.

func buildJoinIndex(t *testing.T, kind index.Kind, items []index.Item) index.Index {
	t.Helper()
	idx, err := index.NewWithPageSize(kind, 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := index.Load(idx, items); err != nil {
		t.Fatal(err)
	}
	return idx
}

// joinPairSet collects a result's pairs, failing on duplicates.
func joinPairSet(t *testing.T, label string, pairs []JoinPair) map[pairKey]bool {
	t.Helper()
	set := make(map[pairKey]bool, len(pairs))
	for _, p := range pairs {
		k := pairKey{p.LeftOID, p.RightOID}
		if set[k] {
			t.Fatalf("%s: duplicate pair %v", label, k)
		}
		set[k] = true
	}
	return set
}

func samePairSet(t *testing.T, label string, want, got map[pairKey]bool) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("%s: missing pair %v", label, k)
		}
	}
}

// groundTruthJoin derives the join answer from per-object queries: for
// every right item, the left index is queried with the right rectangle
// as reference (the join's accept is cands.Has(ConfigOf(left, right)),
// which is exactly QuerySetMBR's leaf test with ref = the right rect).
func groundTruthJoin(t *testing.T, leftIdx index.Index, rightItems []index.Item, rels topo.Set, nonContig bool) map[pairKey]bool {
	t.Helper()
	p := &Processor{Idx: leftIdx, NonContiguous: nonContig}
	out := map[pairKey]bool{}
	for _, it := range rightItems {
		res, err := p.QuerySetMBRCtx(context.Background(), rels, it.Rect)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range res.Matches {
			out[pairKey{m.OID, it.OID}] = true
		}
	}
	return out
}

func TestJoinDifferential(t *testing.T) {
	workloads := []struct {
		name  string
		items func(n int, seed int64) []index.Item
	}{
		{"uniform", func(n int, seed int64) []index.Item {
			return workload.NewDataset(workload.Small, n, 0, seed).Items
		}},
		{"clustered", func(n int, seed int64) []index.Item {
			return workload.ClusteredDataset(workload.Small, n, 0, 8, seed).Items
		}},
	}
	relSets := []struct {
		name      string
		rels      topo.Set
		nonContig bool
	}{{"noncontig-meet", topo.NewSet(topo.Meet), true}}
	for _, rel := range topo.All() {
		relSets = append(relSets, struct {
			name      string
			rels      topo.Set
			nonContig bool
		}{rel.String(), topo.NewSet(rel), false})
	}

	for _, wl := range workloads {
		for _, kind := range []index.Kind{index.KindRTree, index.KindRStar} {
			left := buildJoinIndex(t, kind, wl.items(380, 101))
			rightItems := wl.items(300, 202)
			right := buildJoinIndex(t, kind, rightItems)
			for _, rs := range relSets {
				label := fmt.Sprintf("%s/%s/%s", wl.name, kind, rs.name)
				truth := groundTruthJoin(t, left, rightItems, rs.rels, rs.nonContig)

				serial, err := JoinTopological(left, right, rs.rels, JoinOptions{
					Workers: 1, NonContiguous: rs.nonContig,
				})
				if err != nil {
					t.Fatalf("%s: serial join: %v", label, err)
				}
				samePairSet(t, label+"/serial", truth, joinPairSet(t, label, serial.Pairs))

				parallel, err := JoinTopological(left, right, rs.rels, JoinOptions{
					Workers: 8, NonContiguous: rs.nonContig,
				})
				if err != nil {
					t.Fatalf("%s: parallel join: %v", label, err)
				}
				samePairSet(t, label+"/parallel", truth, joinPairSet(t, label, parallel.Pairs))
				if parallel.Stats != serial.Stats {
					t.Fatalf("%s: parallel stats %+v != serial stats %+v",
						label, parallel.Stats, serial.Stats)
				}

				naive, err := JoinTopological(left, right, rs.rels, JoinOptions{
					NaiveReads: true, NonContiguous: rs.nonContig,
				})
				if err != nil {
					t.Fatalf("%s: naive join: %v", label, err)
				}
				samePairSet(t, label+"/naive", truth, joinPairSet(t, label, naive.Pairs))
				if serial.Stats.NodeAccesses > naive.Stats.NodeAccesses {
					t.Fatalf("%s: sweep join read %d pages, naive baseline %d; dedup must never read more",
						label, serial.Stats.NodeAccesses, naive.Stats.NodeAccesses)
				}
			}
		}
	}
}

// TestJoinDifferentialSelf: self-joins with and without KeepSelfPairs
// must match the per-object ground truth on both tree kinds.
func TestJoinDifferentialSelf(t *testing.T) {
	items := workload.NewDataset(workload.Small, 350, 0, 77).Items
	for _, kind := range []index.Kind{index.KindRTree, index.KindRStar} {
		idx := buildJoinIndex(t, kind, items)
		for _, rel := range []topo.Relation{topo.Overlap, topo.Meet, topo.Equal} {
			rels := topo.NewSet(rel)
			full := groundTruthJoin(t, idx, items, rels, false)
			for _, keep := range []bool{false, true} {
				truth := make(map[pairKey]bool, len(full))
				for k := range full {
					if keep || k.a != k.b {
						truth[k] = true
					}
				}
				label := fmt.Sprintf("%s/%s/keep=%v", kind, rel, keep)
				serial, err := JoinTopological(idx, idx, rels, JoinOptions{Workers: 1, KeepSelfPairs: keep})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				samePairSet(t, label+"/serial", truth, joinPairSet(t, label, serial.Pairs))
				parallel, err := JoinTopological(idx, idx, rels, JoinOptions{Workers: 8, KeepSelfPairs: keep})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				samePairSet(t, label+"/parallel", truth, joinPairSet(t, label, parallel.Pairs))
				if parallel.Stats != serial.Stats {
					t.Fatalf("%s: parallel stats %+v != serial %+v", label, parallel.Stats, serial.Stats)
				}
			}
		}
	}
}

// TestJoinStreamAPI covers the streaming faces over the same engine:
// cursor, iterator, limits, and early stops must agree with the batch
// join and leave the statistics consistent.
func TestJoinStreamAPI(t *testing.T) {
	lStore, _, lIdx := joinScenario(t, 31, 240)
	rStore, _, rIdx := joinScenario(t, 32, 200)
	rels := topo.NewSet(topo.Overlap)
	opts := JoinOptions{LeftObjects: lStore, RightObjects: rStore, RefineWorkers: 4}

	batch, err := JoinTopological(lIdx, rIdx, rels, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := joinPairSet(t, "batch", batch.Pairs)
	if len(want) == 0 {
		t.Fatal("scenario produced no pairs; tests below would be vacuous")
	}

	// Cursor: full drain matches the batch answer.
	cur := OpenJoinCursor(context.Background(), lIdx, rIdx, rels, opts, 0)
	var got []JoinPair
	for cur.Next() {
		got = append(got, cur.Pair())
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	samePairSet(t, "cursor", want, joinPairSet(t, "cursor", got))
	if s := cur.Stats(); s.Candidates != batch.Stats.Candidates || s.NodeAccesses != batch.Stats.NodeAccesses {
		t.Fatalf("cursor stats %+v != batch stats %+v", s, batch.Stats)
	}

	// Cursor with a limit, then abandoned early: both bounded and clean.
	cur = OpenJoinCursor(context.Background(), lIdx, rIdx, rels, opts, 3)
	n := 0
	for cur.Next() {
		n++
	}
	if err := cur.Err(); err != nil || n != 3 {
		t.Fatalf("limited cursor: %d pairs, err %v; want 3, nil", n, err)
	}
	cur = OpenJoinCursor(context.Background(), lIdx, rIdx, rels, opts, 0)
	if !cur.Next() {
		t.Fatal("cursor had no first pair")
	}
	cur.Close()
	if err := cur.Err(); err != nil {
		t.Fatalf("closed cursor reports error %v", err)
	}

	// Iterator: break stops the join; full range matches the batch.
	seen := map[pairKey]bool{}
	for p, err := range JoinPairs(context.Background(), lIdx, rIdx, rels, opts, 0) {
		if err != nil {
			t.Fatal(err)
		}
		seen[pairKey{p.LeftOID, p.RightOID}] = true
	}
	samePairSet(t, "iterator", want, seen)
	n = 0
	for _, err := range JoinPairs(context.Background(), lIdx, rIdx, rels, opts, 0) {
		if err != nil {
			t.Fatal(err)
		}
		if n++; n == 2 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("iterator break delivered %d pairs, want 2", n)
	}
}
