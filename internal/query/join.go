package query

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"runtime"
	"sync"
	"sync/atomic"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/index"
	"mbrtopo/internal/interval"
	"mbrtopo/internal/mbr"
	"mbrtopo/internal/rtree"
	"mbrtopo/internal/topo"
)

// JoinPair is one result of a topological spatial join.
type JoinPair struct {
	LeftOID, RightOID   uint64
	LeftRect, RightRect geom.Rect
}

// JoinResult bundles join pairs with cost statistics.
type JoinResult struct {
	Pairs []JoinPair
	Stats Stats
}

// JoinOptions configure the join functions.
type JoinOptions struct {
	// LeftObjects / RightObjects enable exact refinement. When nil the
	// join returns filter-level candidate pairs (configurations
	// admissible for the relation set).
	LeftObjects, RightObjects ObjectStore
	// NonContiguous selects the Section 7 candidate tables.
	NonContiguous bool
	// KeepSelfPairs keeps (o, o) pairs in self-joins (by default a pair
	// with equal OIDs from joining an index with itself is dropped).
	KeepSelfPairs bool
	// Workers bounds the synchronized-traversal worker pool of the join
	// engine; all workers share the same two pinned tree snapshots.
	// 0 (or negative) uses GOMAXPROCS; 1 traverses serially.
	Workers int
	// RefineWorkers bounds the worker pool of the exact-refinement
	// stage, which runs concurrently with the traversal when both
	// object stores are set (Processor semantics: negative uses
	// GOMAXPROCS, 0 or 1 refines on a single goroutine).
	RefineWorkers int
	// NaiveReads selects the legacy nested-loop engine that re-reads
	// right child pages (and a serial traversal). It is the cost
	// baseline of the experiments and benchmarks; leave it unset.
	NaiveReads bool
}

// refineWorkers resolves the refinement pool size.
func (o JoinOptions) refineWorkers() int {
	switch {
	case o.RefineWorkers < 0:
		return runtime.GOMAXPROCS(0)
	case o.RefineWorkers == 0:
		return 1
	default:
		return o.RefineWorkers
	}
}

// joinTrees rejects access methods the synchronized traversal cannot
// join: both sides must be covering-rectangle trees — a mutable
// R-/R*-tree or a flat snapshot taken from one. R+-trees (and their
// snapshots) partition space (one object may appear in several
// leaves), so join them by running per-object queries instead.
func joinTrees(left, right index.Index) (rtree.Joinable, rtree.Joinable, error) {
	t1, err := joinSide(left)
	if err != nil {
		return nil, nil, err
	}
	t2, err := joinSide(right)
	if err != nil {
		return nil, nil, err
	}
	return t1, t2, nil
}

func joinSide(idx index.Index) (rtree.Joinable, error) {
	switch t := idx.(type) {
	case *rtree.Tree:
		return t, nil
	case *rtree.FlatTree:
		if t.CoveringNodeRects() {
			return t, nil
		}
	}
	return nil, fmt.Errorf("query: join requires covering-rectangle trees (got %s)", idx.Name())
}

// Tiled is the structural interface of a sharded index (shard.Sharded
// implements it): a routed index whose data lives in per-tile
// sub-indexes. Joins scatter across tile pairs instead of traversing
// through the router, so join work parallelises across shards.
type Tiled interface {
	index.Index
	Tiles() []index.Index
}

// tileSet flattens an index into its joinable tiles: the tiles of a
// Tiled index, or the index itself.
func tileSet(idx index.Index) []index.Index {
	if t, ok := idx.(Tiled); ok {
		return t.Tiles()
	}
	return []index.Index{idx}
}

// CanJoin reports (as an error) whether the two indexes can be joined
// by synchronized traversal. It lets callers that stream results over
// a network reject unsupported pairs before committing to a response.
// Sharded indexes are joinable when their tiles are.
func CanJoin(left, right index.Index) error {
	for _, side := range [][]index.Index{tileSet(left), tileSet(right)} {
		for _, t := range side {
			if _, err := joinSide(t); err != nil {
				return err
			}
		}
	}
	return nil
}

// sweepSafe reports whether every admissible configuration shares at
// least one point on each axis — the soundness condition for the
// engine's plane-sweep matcher and node-MBR clipping, which only
// enumerate axis-overlapping pairs. Every topological relation except
// disjoint implies MBR intersection, so any relation set without
// disjoint qualifies; sets containing disjoint fall back to the
// pruned nested loop (which still dedups child reads and runs on the
// worker pool).
func sweepSafe(cands mbr.ConfigSet) bool {
	xs, ys := cands.XRelations(), cands.YRelations()
	return !xs.Has(interval.Before) && !xs.Has(interval.After) &&
		!ys.Has(interval.Before) && !ys.Has(interval.After)
}

// JoinTopological finds all pairs (l, r) of objects from the two
// indexes with rel(l, r) for some rel in rels, by synchronized
// traversal of both trees with configuration-based pruning (the
// two-sided analogue of the paper's Table 2, derived per axis). It is
// a collecting wrapper around JoinStream; pair order is unspecified.
func JoinTopological(left, right index.Index, rels topo.Set, opts JoinOptions) (JoinResult, error) {
	var out JoinResult
	stats, err := JoinStream(context.Background(), left, right, rels, opts, func(p JoinPair) bool {
		out.Pairs = append(out.Pairs, p)
		return true
	})
	if err != nil {
		return JoinResult{}, err
	}
	out.Stats = stats
	return out, nil
}

// JoinStream runs the join, calling yield for every result pair as it
// is found. Without object stores the pairs are filter-level
// candidates; with both stores set each candidate is refined first
// (Figure 9 direct accepts, exact geometry otherwise) on a pool of
// RefineWorkers goroutines running concurrently with the traversal.
// yield is never called concurrently; returning false from it stops
// the join cleanly (nil error). On cancellation JoinStream returns
// ctx.Err() together with the statistics accumulated so far.
func JoinStream(ctx context.Context, left, right index.Index, rels topo.Set, opts JoinOptions, yield func(JoinPair) bool) (Stats, error) {
	if rels.IsEmpty() {
		return Stats{}, fmt.Errorf("query: empty relation set")
	}
	if _, lt := left.(Tiled); lt {
		return joinSharded(ctx, left, right, rels, opts, yield)
	} else if _, rt := right.(Tiled); rt {
		return joinSharded(ctx, left, right, rels, opts, yield)
	}
	t1, t2, err := joinTrees(left, right)
	if err != nil {
		return Stats{}, err
	}

	var cands mbr.ConfigSet
	if opts.NonContiguous {
		cands = mbr.CandidatesNonContiguousSet(rels)
	} else {
		cands = mbr.CandidatesSet(rels)
	}
	prop := mbr.JoinPropagation(cands)
	engineOpts := rtree.JoinOptions{
		Workers:      opts.Workers,
		Intersecting: sweepSafe(cands),
		NaiveReads:   opts.NaiveReads,
	}
	if engineOpts.Intersecting {
		engineOpts.SweepDensity = joinSweepDensity(left, right)
	}
	prune := func(a, b geom.Rect) bool { return prop.Has(mbr.ConfigOf(a, b)) }
	accept := func(a, b geom.Rect) bool { return cands.Has(mbr.ConfigOf(a, b)) }
	selfJoin := left == right
	dropSelf := selfJoin && !opts.KeepSelfPairs

	if opts.LeftObjects == nil || opts.RightObjects == nil {
		// Filter-only: deliver candidates straight from the engine's
		// (serialised) emit callback.
		candidates := 0
		ts, err := rtree.JoinCtx(ctx, t1, t2, prune, accept,
			func(aRect geom.Rect, aOID uint64, bRect geom.Rect, bOID uint64) bool {
				if dropSelf && aOID == bOID {
					return true
				}
				candidates++
				return yield(JoinPair{LeftOID: aOID, RightOID: bOID, LeftRect: aRect, RightRect: bRect})
			}, engineOpts)
		return Stats{NodeAccesses: ts.NodeAccesses, Candidates: candidates}, err
	}
	return joinRefined(ctx, t1, t2, rels, opts, engineOpts, prune, accept, dropSelf, yield)
}

// joinSharded scatters a join across tile pairs. Every (left tile,
// right tile) combination whose root bounds admit a configuration in
// the join propagation is a unit of work — explicit cross-tile border
// pairs included, since under single assignment two rectangles that
// match can live in different tiles. Pairs run on a worker pool (the
// per-pair engines traverse serially then, so parallelism comes from
// the shards), results merge through one serialising yield, and a
// self-join drops equal-OID pairs at the merge point exactly like the
// single-index engine does.
func joinSharded(ctx context.Context, left, right index.Index, rels topo.Set, opts JoinOptions, yield func(JoinPair) bool) (Stats, error) {
	leftTiles, rightTiles := tileSet(left), tileSet(right)
	for _, side := range [][]index.Index{leftTiles, rightTiles} {
		for _, t := range side {
			if _, err := joinSide(t); err != nil {
				return Stats{}, err
			}
		}
	}

	var cands mbr.ConfigSet
	if opts.NonContiguous {
		cands = mbr.CandidatesNonContiguousSet(rels)
	} else {
		cands = mbr.CandidatesSet(rels)
	}
	prop := mbr.JoinPropagation(cands)
	dropSelf := left == right && !opts.KeepSelfPairs

	// Enumerate feasible tile pairs: the same root-root propagation test
	// the engine runs first, applied to tile bounds, culls pairs that
	// cannot contribute (conservative — bounds cover members). Both
	// orders of a cross-tile pair appear, matching the single tree's
	// self-join, which emits both ordered pairs.
	type tilePair struct{ l, r index.Index }
	var pairs []tilePair
	for _, lt := range leftTiles {
		lb, lok := lt.Bounds()
		if !lok {
			continue
		}
		for _, rt := range rightTiles {
			rb, rok := rt.Bounds()
			if !rok {
				continue
			}
			if !prop.Has(mbr.ConfigOf(lb, rb)) {
				continue
			}
			pairs = append(pairs, tilePair{l: lt, r: rt})
		}
	}
	if len(pairs) == 0 {
		return Stats{}, nil
	}

	inner := opts
	inner.KeepSelfPairs = true // the merge point filters self pairs
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if len(pairs) > 1 {
		inner.Workers = 1
	}

	if workers == 1 {
		// Serial fast path: no goroutines, channel, or serialising
		// mutex — the per-pair engines already call yield one at a time.
		var total Stats
		stopped := false
		deliver := func(p JoinPair) bool {
			if dropSelf && p.LeftOID == p.RightOID {
				return true
			}
			if !yield(p) {
				stopped = true
				return false
			}
			return true
		}
		for _, pr := range pairs {
			st, err := JoinStream(ctx, pr.l, pr.r, rels, inner, deliver)
			total.NodeAccesses += st.NodeAccesses
			total.Candidates += st.Candidates
			total.RefinementTests += st.RefinementTests
			total.DirectAccepts += st.DirectAccepts
			total.FalseHits += st.FalseHits
			total.HullResolved += st.HullResolved
			if err != nil {
				return total, err
			}
			if stopped {
				return total, nil
			}
		}
		return total, nil
	}

	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		yieldMu sync.Mutex
		stopped bool
	)
	deliver := func(p JoinPair) bool {
		yieldMu.Lock()
		defer yieldMu.Unlock()
		if stopped {
			return false
		}
		if dropSelf && p.LeftOID == p.RightOID {
			return true
		}
		if !yield(p) {
			stopped = true
			cancel()
			return false
		}
		return true
	}

	var (
		statsMu sync.Mutex
		total   Stats
		errs    = make([]error, workers)
		wg      sync.WaitGroup
	)
	pairCh := make(chan tilePair)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for pr := range pairCh {
				st, err := JoinStream(jctx, pr.l, pr.r, rels, inner, deliver)
				statsMu.Lock()
				total.NodeAccesses += st.NodeAccesses
				total.Candidates += st.Candidates
				total.RefinementTests += st.RefinementTests
				total.DirectAccepts += st.DirectAccepts
				total.FalseHits += st.FalseHits
				total.HullResolved += st.HullResolved
				statsMu.Unlock()
				if err != nil && errs[w] == nil {
					errs[w] = err
				}
				if err != nil {
					cancel()
					return
				}
			}
		}(w)
	}
feed:
	for _, pr := range pairs {
		select {
		case pairCh <- pr:
		case <-jctx.Done():
			break feed
		}
	}
	close(pairCh)
	wg.Wait()

	if stopped {
		return total, nil
	}
	if err := ctx.Err(); err != nil {
		return total, err
	}
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return total, err
		}
	}
	return total, nil
}

// joinRefined is the streaming pipeline with exact refinement: the
// traversal produces candidate pairs into a bounded channel, a pool of
// refinement workers applies step 4 (direct accepts from the MBR
// configuration, exact geometry otherwise), and accepted pairs are
// delivered through a serialising mutex.
func joinRefined(ctx context.Context, t1, t2 rtree.Joinable, rels topo.Set,
	opts JoinOptions, engineOpts rtree.JoinOptions,
	prune, accept func(a, b geom.Rect) bool, dropSelf bool,
	yield func(JoinPair) bool) (Stats, error) {

	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		candidates, directAccepts  atomic.Int64
		refinementTests, falseHits atomic.Int64
		wg                         sync.WaitGroup
		yieldMu                    sync.Mutex
		yieldStopped               bool
		errOnce                    sync.Once
		refineErr                  error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			refineErr = err
			cancel()
		})
	}
	deliver := func(p JoinPair) {
		yieldMu.Lock()
		defer yieldMu.Unlock()
		if yieldStopped {
			return
		}
		if !yield(p) {
			yieldStopped = true
			cancel()
		}
	}
	refineOne := func(p JoinPair) {
		cfg := mbr.ConfigOf(p.LeftRect, p.RightRect)
		poss := mbr.PossibleRelations(cfg)
		if opts.NonContiguous {
			poss = mbr.PossibleRelationsNonContiguous(cfg)
		}
		// Figure 9 generalised to disjunctions: if every relation the
		// configuration admits is wanted, accept without geometry.
		if poss.SubsetOf(rels) {
			directAccepts.Add(1)
			deliver(p)
			return
		}
		lo, ok := opts.LeftObjects.Object(p.LeftOID)
		if !ok {
			fail(fmt.Errorf("query: join refinement needs left object %d", p.LeftOID))
			return
		}
		ro, ok := opts.RightObjects.Object(p.RightOID)
		if !ok {
			fail(fmt.Errorf("query: join refinement needs right object %d", p.RightOID))
			return
		}
		refinementTests.Add(1)
		if rels.Has(geom.RelateRegions(lo, ro)) {
			deliver(p)
		} else {
			falseHits.Add(1)
		}
	}

	workers := opts.refineWorkers()
	candCh := make(chan JoinPair, 4*workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range candCh {
				refineOne(p)
			}
		}()
	}
	ts, jerr := rtree.JoinCtx(jctx, t1, t2, prune, accept,
		func(aRect geom.Rect, aOID uint64, bRect geom.Rect, bOID uint64) bool {
			if dropSelf && aOID == bOID {
				return true
			}
			candidates.Add(1)
			select {
			case candCh <- JoinPair{LeftOID: aOID, RightOID: bOID, LeftRect: aRect, RightRect: bRect}:
				return true
			case <-jctx.Done():
				return false
			}
		}, engineOpts)
	close(candCh)
	wg.Wait()

	stats := Stats{
		NodeAccesses:    ts.NodeAccesses,
		Candidates:      int(candidates.Load()),
		DirectAccepts:   int(directAccepts.Load()),
		RefinementTests: int(refinementTests.Load()),
		FalseHits:       int(falseHits.Load()),
	}
	switch {
	case refineErr != nil:
		return stats, refineErr
	case yieldStopped:
		return stats, nil
	case jerr != nil:
		return stats, jerr
	case ctx.Err() != nil:
		// The engine's emit can observe the cancellation as a declined
		// send (a clean stop from its point of view); report it anyway.
		return stats, ctx.Err()
	}
	return stats, nil
}

// JoinPairs returns the streaming join as an iterator, for
// range-over-func consumers:
//
//	for p, err := range query.JoinPairs(ctx, left, right, rels, opts, 0) {
//	    if err != nil { ... }
//	    use(p)
//	}
//
// A non-nil error, if any, is the final pair's second value (with a
// zero JoinPair). Breaking out of the loop stops the join. limit > 0
// caps the number of pairs delivered.
func JoinPairs(ctx context.Context, left, right index.Index, rels topo.Set, opts JoinOptions, limit int) iter.Seq2[JoinPair, error] {
	return func(yield func(JoinPair, error) bool) {
		stopped := false
		emitted := 0
		_, err := JoinStream(ctx, left, right, rels, opts, func(p JoinPair) bool {
			if !yield(p, nil) {
				stopped = true
				return false
			}
			emitted++
			return limit <= 0 || emitted < limit
		})
		if err != nil && !stopped {
			yield(JoinPair{}, err)
		}
	}
}

// JoinCursor is a pull-based view of a streaming join, the two-tree
// analogue of Cursor: the join runs in a background goroutine with a
// small buffer; Next blocks for the next pair. Close releases the
// goroutine early (safe, and required, when abandoning a cursor before
// exhaustion; closing an exhausted cursor is a no-op).
type JoinCursor struct {
	ch     chan JoinPair
	cancel context.CancelFunc
	done   chan struct{}

	cur   JoinPair
	stats Stats
	err   error
}

// OpenJoinCursor starts a streaming join and returns a cursor over its
// result pairs. The join runs concurrently with consumption and stops
// when the cursor is closed, the limit is reached, or ctx is
// cancelled.
func OpenJoinCursor(ctx context.Context, left, right index.Index, rels topo.Set, opts JoinOptions, limit int) *JoinCursor {
	ctx, cancel := context.WithCancel(ctx)
	c := &JoinCursor{
		ch:     make(chan JoinPair, cursorBuffer),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go func() {
		defer close(c.done)
		defer close(c.ch)
		emitted := 0
		stats, err := JoinStream(ctx, left, right, rels, opts, func(p JoinPair) bool {
			select {
			case c.ch <- p:
			case <-ctx.Done():
				return false
			}
			emitted++
			return limit <= 0 || emitted < limit
		})
		c.stats = stats
		if err != nil && ctx.Err() == nil {
			c.err = err
		}
	}()
	return c
}

// Next advances to the next pair, reporting false at end of stream
// (exhaustion, error, limit, or Close). After false, Err and Stats are
// final.
func (c *JoinCursor) Next() bool {
	p, ok := <-c.ch
	if !ok {
		return false
	}
	c.cur = p
	return true
}

// Pair returns the pair Next advanced to.
func (c *JoinCursor) Pair() JoinPair { return c.cur }

// Err returns the join error, if any, once the stream has ended. A
// cursor stopped by Close or context cancellation reports nil.
func (c *JoinCursor) Err() error {
	<-c.done
	return c.err
}

// Stats returns the join statistics; it blocks until the producing
// join has finished (call after Next returns false, or after Close).
func (c *JoinCursor) Stats() Stats {
	<-c.done
	return c.stats
}

// Close stops the join and releases its goroutine. Safe to call
// multiple times and concurrently with Next.
func (c *JoinCursor) Close() {
	c.cancel()
	for range c.ch {
	}
	<-c.done
}
