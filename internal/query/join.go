package query

import (
	"fmt"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/index"
	"mbrtopo/internal/mbr"
	"mbrtopo/internal/rtree"
	"mbrtopo/internal/topo"
)

// JoinPair is one result of a topological spatial join.
type JoinPair struct {
	LeftOID, RightOID   uint64
	LeftRect, RightRect geom.Rect
}

// JoinResult bundles join pairs with cost statistics.
type JoinResult struct {
	Pairs []JoinPair
	Stats Stats
}

// JoinOptions configure JoinTopological.
type JoinOptions struct {
	// LeftObjects / RightObjects enable exact refinement. When nil the
	// join returns filter-level candidate pairs (configurations
	// admissible for the relation set).
	LeftObjects, RightObjects ObjectStore
	// NonContiguous selects the Section 7 candidate tables.
	NonContiguous bool
	// KeepSelfPairs keeps (o, o) pairs in self-joins (by default a pair
	// with equal OIDs from joining an index with itself is dropped).
	KeepSelfPairs bool
}

// JoinTopological finds all pairs (l, r) of objects from the two
// indexes with rel(l, r) for some rel in rels, by synchronized
// traversal of both trees with configuration-based pruning (the
// two-sided analogue of the paper's Table 2, derived per axis). Both
// indexes must be covering-rectangle trees (R-tree or R*-tree); join
// an R+-tree by running per-object queries instead.
func JoinTopological(left, right index.Index, rels topo.Set, opts JoinOptions) (JoinResult, error) {
	if rels.IsEmpty() {
		return JoinResult{}, fmt.Errorf("query: empty relation set")
	}
	t1, ok1 := left.(*rtree.Tree)
	t2, ok2 := right.(*rtree.Tree)
	if !ok1 || !ok2 {
		return JoinResult{}, fmt.Errorf("query: join requires covering-rectangle trees (got %s, %s)",
			left.Name(), right.Name())
	}

	var cands mbr.ConfigSet
	if opts.NonContiguous {
		cands = mbr.CandidatesNonContiguousSet(rels)
	} else {
		cands = mbr.CandidatesSet(rels)
	}
	prop := mbr.JoinPropagation(cands)

	selfJoin := left == right
	var out JoinResult
	ts, err := rtree.Join(t1, t2,
		func(a, b geom.Rect) bool { return prop.Has(mbr.ConfigOf(a, b)) },
		func(a, b geom.Rect) bool { return cands.Has(mbr.ConfigOf(a, b)) },
		func(aRect geom.Rect, aOID uint64, bRect geom.Rect, bOID uint64) bool {
			if selfJoin && !opts.KeepSelfPairs && aOID == bOID {
				return true
			}
			out.Pairs = append(out.Pairs, JoinPair{
				LeftOID: aOID, RightOID: bOID, LeftRect: aRect, RightRect: bRect,
			})
			return true
		})
	if err != nil {
		return JoinResult{}, err
	}
	out.Stats.NodeAccesses = ts.NodeAccesses
	out.Stats.Candidates = len(out.Pairs)

	// Refinement.
	if opts.LeftObjects != nil && opts.RightObjects != nil {
		kept := out.Pairs[:0]
		for _, p := range out.Pairs {
			cfg := mbr.ConfigOf(p.LeftRect, p.RightRect)
			poss := mbr.PossibleRelations(cfg)
			if opts.NonContiguous {
				poss = mbr.PossibleRelationsNonContiguous(cfg)
			}
			if poss.SubsetOf(rels) {
				out.Stats.DirectAccepts++
				kept = append(kept, p)
				continue
			}
			lo, ok := opts.LeftObjects.Object(p.LeftOID)
			if !ok {
				return JoinResult{}, fmt.Errorf("query: join refinement needs left object %d", p.LeftOID)
			}
			ro, ok := opts.RightObjects.Object(p.RightOID)
			if !ok {
				return JoinResult{}, fmt.Errorf("query: join refinement needs right object %d", p.RightOID)
			}
			out.Stats.RefinementTests++
			if rels.Has(geom.RelateRegions(lo, ro)) {
				kept = append(kept, p)
			} else {
				out.Stats.FalseHits++
			}
		}
		out.Pairs = kept
	}
	return out, nil
}
