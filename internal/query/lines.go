package query

import (
	"context"
	"fmt"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/mbr"
)

// LineStore resolves object ids to polylines for line-query
// refinement.
type LineStore map[uint64]geom.PolyLine

// QueryLine finds all stored lines standing in the given line-region
// relation to the reference region (the paper's Section 7 extension to
// linear data). The index is expected to hold the lines' MBRs under
// the same object ids as the store. Lines with degenerate (axis-
// aligned) MBRs cannot be stored in an MBR index directly; pad their
// rectangles and run the processor in NonCrisp mode.
func (p *Processor) QueryLine(rel geom.LineRegionRelation, ref geom.Region, lines LineStore) (Result, error) {
	return p.QueryLineCtx(context.Background(), rel, ref, lines)
}

// QueryLineCtx is QueryLine with context cancellation.
func (p *Processor) QueryLineCtx(ctx context.Context, rel geom.LineRegionRelation, ref geom.Region, lines LineStore) (Result, error) {
	if !rel.Valid() {
		return Result{}, fmt.Errorf("query: invalid line-region relation %v", rel)
	}
	if ref == nil {
		return Result{}, fmt.Errorf("query: nil reference region")
	}
	if err := ref.Validate(); err != nil {
		return Result{}, fmt.Errorf("query: invalid reference region: %w", err)
	}
	cands := mbr.LineCandidates(rel)
	if p.NonCrisp {
		cands = mbr.Expand2(cands)
	}
	refMBR := ref.Bounds()
	matches, stats, err := p.filter(ctx, cands, refMBR)
	if err != nil {
		return Result{}, err
	}
	out := matches[:0:0]
	for _, m := range matches {
		cfg := mbr.ConfigOf(m.Rect, refMBR)
		// Direct accept when the configuration admits only the queried
		// relation (crisp MBRs only).
		if !p.NonCrisp {
			if poss := mbr.PossibleLineRelations(cfg); len(poss) == 1 && poss[0] == rel {
				stats.DirectAccepts++
				out = append(out, m)
				continue
			}
		}
		line, ok := lines[m.OID]
		if !ok {
			return Result{}, fmt.Errorf("query: refinement needs line %d, not in store", m.OID)
		}
		stats.RefinementTests++
		if got, _ := geom.RelateLineRegion(line, ref); got == rel {
			out = append(out, m)
		} else {
			stats.FalseHits++
		}
	}
	return Result{Matches: out, Stats: stats}, nil
}
