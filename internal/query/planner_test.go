package query

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/index"
	"mbrtopo/internal/mbr"
	"mbrtopo/internal/rtree"
	"mbrtopo/internal/topo"
)

// skewedIndex bulk-loads a world with a dense cluster in the lower
// left and a sparse scatter everywhere else — the distribution the
// static CostGroup rule mis-plans, since it only looks at reference
// MBR areas.
func skewedIndex(t *testing.T) (index.Index, []rtree.Record) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var recs []rtree.Record
	oid := uint64(1)
	add := func(x, y, w, h float64) {
		recs = append(recs, rtree.Record{Rect: geom.R(x, y, x+w, y+h), OID: oid})
		oid++
	}
	for i := 0; i < 1800; i++ { // dense cluster in [0,20]²
		add(rng.Float64()*19, rng.Float64()*19, 0.5+rng.Float64(), 0.5+rng.Float64())
	}
	for i := 0; i < 200; i++ { // sparse everywhere in [0,100]²
		add(rng.Float64()*98, rng.Float64()*98, 0.5+rng.Float64(), 0.5+rng.Float64())
	}
	idx, err := index.NewWithPageSize(index.KindRStar, 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.(*rtree.Tree).InsertBatch(recs); err != nil {
		t.Fatal(err)
	}
	return idx, recs
}

// TestPlannerEstimatesSkew: the histogram estimates must see the
// density difference between a cluster window and an empty window of
// the same size.
func TestPlannerEstimatesSkew(t *testing.T) {
	idx, _ := skewedIndex(t)
	pl := PlannerFor(idx)
	if pl == nil {
		t.Fatal("PlannerFor returned nil for a stats-backed index")
	}
	dense := geom.R(2, 2, 12, 12)
	sparse := geom.R(70, 70, 80, 80)
	de := pl.Estimate(topo.Overlap, dense)
	se := pl.Estimate(topo.Overlap, sparse)
	if de < 4*se {
		t.Fatalf("dense window estimate %.1f not clearly above sparse %.1f", de, se)
	}
	// Disjoint is the complement: the sparse window should leave more.
	if pl.Estimate(topo.Disjoint, dense) > pl.Estimate(topo.Disjoint, sparse) {
		t.Fatalf("disjoint estimates inverted")
	}
	// Containment direction: a big window contains more than a tiny one.
	if pl.Estimate(topo.Inside, dense) < pl.Estimate(topo.Inside, geom.R(5, 5, 5.1, 5.1)) {
		t.Fatalf("inside estimate not monotone in window size")
	}
}

// TestPlanConjunctionReorders: both terms in the same cost group, the
// dense reference smaller — the static rule retrieves the dense side,
// the planner overrides it to the sparse one.
func TestPlanConjunctionReorders(t *testing.T) {
	idx, _ := skewedIndex(t)
	pl := PlannerFor(idx)
	dense := geom.R(2, 2, 12, 12)    // area 100, ~full of cluster entries
	sparse := geom.R(60, 60, 90, 90) // area 900, nearly empty
	if !swapConjunctionSets(topo.NewSet(topo.Overlap), sparse, topo.NewSet(topo.Overlap), dense) {
		t.Fatalf("static rule should pick the smaller (dense) reference")
	}
	plan := planConjunction(pl, topo.NewSet(topo.Overlap), sparse, topo.NewSet(topo.Overlap), dense)
	if plan.retrieveSecond {
		t.Fatalf("planner kept the dense side: %s", plan.explain)
	}
	if !plan.reordered {
		t.Fatalf("planner did not flag the override: %s", plan.explain)
	}
	// Without statistics the static choice stands and nothing reorders.
	static := planConjunction(nil, topo.NewSet(topo.Overlap), sparse, topo.NewSet(topo.Overlap), dense)
	if !static.retrieveSecond || static.reordered {
		t.Fatalf("static plan wrong: %+v", static)
	}
}

// TestStreamConjunctionMatchesBrute: the streamed conjunction must
// emit exactly the objects that are candidates for both terms,
// whichever side the planner retrieves.
func TestStreamConjunctionMatchesBrute(t *testing.T) {
	idx, recs := skewedIndex(t)
	p := &Processor{Idx: idx}
	cases := []struct {
		r1, r2 topo.Set
		q1, q2 geom.Rect
	}{
		{topo.NewSet(topo.Overlap), topo.NewSet(topo.Overlap), geom.R(2, 2, 12, 12), geom.R(8, 8, 30, 30)},
		{topo.NotDisjoint, topo.NewSet(topo.Disjoint), geom.R(0, 0, 50, 50), geom.R(10, 10, 15, 15)},
		{topo.NewSet(topo.Inside), topo.NewSet(topo.Overlap), geom.R(0, 0, 25, 25), geom.R(20, 0, 40, 25)},
	}
	for ci, tc := range cases {
		c1 := p.candidateConfigs(tc.r1)
		c2 := p.candidateConfigs(tc.r2)
		var want []uint64
		for _, r := range recs {
			if c1.Has(mbr.ConfigOf(r.Rect, tc.q1)) && c2.Has(mbr.ConfigOf(r.Rect, tc.q2)) {
				want = append(want, r.OID)
			}
		}
		var got []uint64
		stats, err := p.StreamConjunction(context.Background(), tc.r1, tc.q1, tc.r2, tc.q2, 0, func(m Match) bool {
			got = append(got, m.OID)
			return true
		})
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("case %d: got %d matches, want %d", ci, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("case %d: match %d: got %d want %d", ci, i, got[i], want[i])
			}
		}
		if stats.Explain == "" {
			t.Fatalf("case %d: no explain line", ci)
		}
	}
}

// TestStreamConjunctionShortCircuits: contradictory terms against
// disjoint references must be answered from the composition table.
func TestStreamConjunctionShortCircuits(t *testing.T) {
	idx, _ := skewedIndex(t)
	p := &Processor{Idx: idx}
	// p inside q1 and p contains q2 is impossible when q1, q2 disjoint.
	stats, err := p.StreamConjunction(context.Background(),
		topo.NewSet(topo.Inside), geom.R(0, 0, 10, 10),
		topo.NewSet(topo.Contains), geom.R(50, 50, 60, 60), 0,
		func(Match) bool { t.Fatal("short-circuited query emitted a match"); return false })
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ShortCircuited || stats.NodeAccesses != 0 {
		t.Fatalf("expected a zero-access short circuit, got %+v", stats)
	}
}
