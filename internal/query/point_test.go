package query

import (
	"math/rand"
	"sort"
	"testing"

	"mbrtopo/internal/geom"
)

// TestQueryPointAgainstBruteForce across all trees and location modes.
func TestQueryPointAgainstBruteForce(t *testing.T) {
	sc := buildScenario(t, 71, 400)
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 40)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	// Also points exactly on some boundaries (polygon vertices).
	for oid := uint64(1); oid <= 5; oid++ {
		pts = append(pts, sc.objects[oid][0])
	}
	brute := func(pt geom.Point, accept map[geom.PointLocation]bool) []uint64 {
		var out []uint64
		for oid, pg := range sc.objects {
			if accept[pg.LocatePoint(pt)] {
				out = append(out, oid)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	modes := []struct {
		name   string
		want   []geom.PointLocation
		accept map[geom.PointLocation]bool
	}{
		{"inside", []geom.PointLocation{geom.PointInside},
			map[geom.PointLocation]bool{geom.PointInside: true}},
		{"boundary", []geom.PointLocation{geom.PointOnBoundary},
			map[geom.PointLocation]bool{geom.PointOnBoundary: true}},
		{"either", nil,
			map[geom.PointLocation]bool{geom.PointInside: true, geom.PointOnBoundary: true}},
	}
	for name, idx := range sc.indexes {
		proc := &Processor{Idx: idx, Objects: sc.objects}
		for _, mode := range modes {
			for _, pt := range pts {
				res, err := proc.QueryPoint(pt, mode.want...)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, mode.name, err)
				}
				want := brute(pt, mode.accept)
				if !eqU64(oids(res.Matches), want) {
					t.Fatalf("%s/%s at %v: got %d, want %d", name, mode.name, pt,
						len(res.Matches), len(want))
				}
			}
		}
	}
}

func TestQueryPointErrors(t *testing.T) {
	sc := buildScenario(t, 2, 30)
	noStore := &Processor{Idx: sc.indexes["R-tree"]}
	if _, err := noStore.QueryPoint(geom.Point{}); err == nil {
		t.Error("point query without store accepted")
	}
	proc := &Processor{Idx: sc.indexes["R-tree"], Objects: sc.objects}
	if _, err := proc.QueryPoint(geom.Point{}, geom.PointOutside); err == nil {
		t.Error("outside as wanted location accepted")
	}
}
