// Package index defines the access-method interface shared by the
// R-tree family and convenience constructors with the paper's
// experimental settings (page capacity 50, R-tree quadratic split with
// m = 40%, R*-tree with m = 40%, R+-tree with the minimal-split cost
// function).
package index

import (
	"context"
	"fmt"
	"io"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/pagefile"
	"mbrtopo/internal/rtree"
)

// TraversalStats is the per-traversal work accounting returned by
// SearchCtx and NearestCtx: exact for the one traversal that produced
// it, no matter how many queries run concurrently (unlike IOStats,
// which aggregates globally across the whole page file).
type TraversalStats = rtree.TraversalStats

// Index is an MBR-based spatial access method over a simulated disk.
// Implementations are safe for concurrent use: searches run in
// parallel under a shared lock, mutations are exclusive.
type Index interface {
	// Insert stores a rectangle under an object id.
	Insert(r geom.Rect, oid uint64) error
	// InsertBatch stores a batch of rectangles in one operation. The
	// R-/R*-trees apply it atomically (queries see none or all of the
	// batch) and Sort-Tile-Recursive pack the batch when the tree is
	// empty; the R+-tree inserts under one lock acquisition.
	InsertBatch(recs []rtree.Record) error
	// Delete removes the entry with exactly this rectangle and id.
	Delete(r geom.Rect, oid uint64) error
	// Update moves an object to a new rectangle (delete + insert).
	Update(oldRect, newRect geom.Rect, oid uint64) error
	// Search traverses the structure, descending into internal entries
	// whose rectangles satisfy nodePred and emitting leaf entries whose
	// rectangles satisfy leafPred. Implementations with duplicate
	// entries (R+-tree) may emit the same object several times.
	Search(nodePred, leafPred func(geom.Rect) bool, emit func(geom.Rect, uint64) bool) error
	// SearchCtx is Search with context cancellation and exact
	// per-traversal IO accounting. On cancellation it returns ctx.Err()
	// with the stats accumulated so far.
	SearchCtx(ctx context.Context, nodePred, leafPred func(geom.Rect) bool, emit func(geom.Rect, uint64) bool) (TraversalStats, error)
	// Len returns the number of distinct stored objects.
	Len() int
	// Height returns the number of levels.
	Height() int
	// Bounds returns the MBR of the stored rectangles.
	Bounds() (geom.Rect, bool)
	// Name identifies the access method.
	Name() string
	// CoveringNodeRects reports whether internal entry rectangles cover
	// all data rectangles stored beneath them (true for R-/R*-trees,
	// false for the partition-region R+-tree). Query processors select
	// the node predicate accordingly.
	CoveringNodeRects() bool
	// IOStats exposes the page file counters (reads = the paper's disk
	// accesses).
	IOStats() pagefile.Stats
	// ResetIOStats zeroes the counters.
	ResetIOStats()
	// Nearest returns the k stored rectangles closest to p (best-first
	// branch-and-bound on MINDIST).
	Nearest(p geom.Point, k int) ([]rtree.Neighbour, error)
	// NearestCtx is Nearest with context cancellation and per-traversal
	// IO accounting.
	NearestCtx(ctx context.Context, p geom.Point, k int) ([]rtree.Neighbour, TraversalStats, error)
}

// Static interface checks.
var (
	_ Index = (*rtree.Tree)(nil)
	_ Index = (*rtree.RPlusTree)(nil)
	_ Index = (*rtree.FlatTree)(nil)
)

// PaperPageSize is the page size giving the paper's node capacity of
// 50 entries (the serial baseline is then ⌈10000/50⌉ = 200 pages).
const PaperPageSize = 2008

// Kind selects an access method.
type Kind int

// The implemented access methods.
const (
	KindRTree Kind = iota
	KindRPlus
	KindRStar
)

func (k Kind) String() string {
	switch k {
	case KindRTree:
		return "R-tree"
	case KindRPlus:
		return "R+-tree"
	case KindRStar:
		return "R*-tree"
	}
	return fmt.Sprintf("index.Kind(%d)", int(k))
}

// AllKinds returns the three access methods in the paper's order.
func AllKinds() []Kind { return []Kind{KindRTree, KindRPlus, KindRStar} }

// New creates an index of the given kind with the paper's settings
// over a fresh in-memory page file.
func New(kind Kind) (Index, error) { return NewWithPageSize(kind, PaperPageSize) }

// NewWithPageSize creates an index with a specific page size.
func NewWithPageSize(kind Kind, pageSize int) (Index, error) {
	file := pagefile.NewMemFile(pageSize)
	switch kind {
	case KindRTree:
		return rtree.NewRTree(file)
	case KindRPlus:
		return rtree.NewRPlus(file, rtree.Options{})
	case KindRStar:
		return rtree.NewRStar(file)
	}
	return nil, fmt.Errorf("index: unknown kind %v", kind)
}

// Item is a rectangle with its object id.
type Item struct {
	Rect geom.Rect
	OID  uint64
}

// Load bulk-inserts items into the index one by one (the build the
// paper's experiments use).
func Load(idx Index, items []Item) error {
	for _, it := range items {
		if err := idx.Insert(it.Rect, it.OID); err != nil {
			return fmt.Errorf("index: loading oid %d: %w", it.OID, err)
		}
	}
	return nil
}

// LoadBulk loads items through InsertBatch: on an empty R-/R*-tree the
// batch is Sort-Tile-Recursive packed — O(N log N), no per-insert
// splits — which is the fast path for building a large index from a
// data file at startup.
func LoadBulk(idx Index, items []Item) error {
	recs := make([]rtree.Record, len(items))
	for i, it := range items {
		recs[i] = rtree.Record{Rect: it.Rect, OID: it.OID}
	}
	if err := idx.InsertBatch(recs); err != nil {
		return fmt.Errorf("index: bulk loading %d items: %w", len(items), err)
	}
	return nil
}

// NewOnFile creates an index of the given kind over an existing page
// file (e.g. a pagefile.DiskFile for persistence or a BufferPool).
func NewOnFile(kind Kind, file pagefile.File) (Index, error) {
	switch kind {
	case KindRTree:
		return rtree.NewRTree(file)
	case KindRPlus:
		return rtree.NewRPlus(file, rtree.Options{})
	case KindRStar:
		return rtree.NewRStar(file)
	}
	return nil, fmt.Errorf("index: unknown kind %v", kind)
}

// NewPacked bulk-loads items into a fresh Sort-Tile-Recursive packed
// tree over an in-memory page file. Only the covering-rectangle
// variants support packing; KindRPlus returns an error.
func NewPacked(kind Kind, pageSize int, items []Item) (Index, error) {
	file := pagefile.NewMemFile(pageSize)
	recs := make([]rtree.Record, len(items))
	for i, it := range items {
		recs[i] = rtree.Record{Rect: it.Rect, OID: it.OID}
	}
	switch kind {
	case KindRTree:
		return rtree.BulkLoad(file, rtree.Options{Split: rtree.SplitQuadratic}, "R-tree/packed", recs)
	case KindRStar:
		return rtree.BulkLoad(file, rtree.Options{
			Split:              rtree.SplitRStar,
			RStarChooseSubtree: true,
			ForcedReinsert:     true,
		}, "R*-tree/packed", recs)
	case KindRPlus:
		return nil, fmt.Errorf("index: the R+-tree has no STR packing (partition build differs)")
	}
	return nil, fmt.Errorf("index: unknown kind %v", kind)
}

// Persist stores the index's metadata in the disk file's header, so
// OpenPersistent can resume it later. The page file must be the one
// the index was built on.
func Persist(idx Index, file *pagefile.DiskFile) error {
	switch t := idx.(type) {
	case *rtree.Tree:
		return file.SetUserMeta(rtree.EncodeMeta(t.Meta()))
	case *rtree.RPlusTree:
		return file.SetUserMeta(rtree.EncodeMeta(t.Meta()))
	}
	return fmt.Errorf("index: cannot persist %T", idx)
}

// OpenPersistent resumes an index of the given kind from a disk file
// whose header was written by Persist.
func OpenPersistent(kind Kind, file *pagefile.DiskFile) (Index, error) {
	return Resume(kind, file, rtree.DecodeMeta(file.UserMeta()))
}

// Resume reopens an index of the given kind over any page file from
// previously persisted metadata. Unlike OpenPersistent it does not
// require the bare *pagefile.DiskFile, so the reopened tree can sit
// behind a BufferPool or a fault-injection wrapper (the crash-recovery
// harness reopens through a CrashFile this way).
func Resume(kind Kind, file pagefile.File, m rtree.Meta) (Index, error) {
	switch kind {
	case KindRTree:
		return rtree.Open(file, rtree.Options{Split: rtree.SplitQuadratic}, "R-tree", m)
	case KindRStar:
		return rtree.Open(file, rtree.Options{
			Split:              rtree.SplitRStar,
			RStarChooseSubtree: true,
			ForcedReinsert:     true,
		}, "R*-tree", m)
	case KindRPlus:
		return rtree.OpenRPlus(file, rtree.Options{}, m)
	}
	return nil, fmt.Errorf("index: unknown kind %v", kind)
}

// WriteFlat serializes the index's currently published version in the
// flat snapshot format (see rtree.FlatTree), tagged with the given
// checkpoint generation, so OpenFlat can serve it read-only without
// reconstructing the paged working copy.
func WriteFlat(idx Index, w io.Writer, gen uint64) error {
	switch t := idx.(type) {
	case *rtree.Tree:
		return t.WriteFlat(w, gen)
	case *rtree.RPlusTree:
		return t.WriteFlat(w, gen)
	}
	return fmt.Errorf("index: cannot write a flat snapshot of %T", idx)
}

// OpenFlat opens a flat snapshot file as a read-only Index. All
// mutating methods of the returned index fail with rtree.ErrReadOnly.
func OpenFlat(path string) (*rtree.FlatTree, error) {
	return rtree.OpenFlat(path)
}

// SerialPages returns the disk accesses of a serial scan of a data
// file with n rectangles at the given page capacity — the paper's
// baseline of 200 pages for 10,000 rectangles at 50 per page.
func SerialPages(n, capacity int) int {
	if capacity <= 0 {
		return 0
	}
	return (n + capacity - 1) / capacity
}
