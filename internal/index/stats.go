package index

import "mbrtopo/internal/rtree"

// StatsProvider is implemented by every backend that can summarise
// its node MBRs (paged trees, flat snapshots, and the sharded router,
// which merges its tiles' summaries). The query planner feeds on it.
type StatsProvider interface {
	Stats() (*rtree.TreeStats, error)
}

// Every index backend answers Stats.
var (
	_ StatsProvider = (*rtree.Tree)(nil)
	_ StatsProvider = (*rtree.RPlusTree)(nil)
	_ StatsProvider = (*rtree.FlatTree)(nil)
)

// StatsOf returns the index's node-MBR summary, or (nil, nil) when
// the backend has none — callers treat a missing summary as "no
// planner, fall back to the static heuristics".
func StatsOf(idx Index) (*rtree.TreeStats, error) {
	if sp, ok := idx.(StatsProvider); ok {
		return sp.Stats()
	}
	return nil, nil
}

// SetStats installs a persisted summary on a backend that accepts one
// (the recovery path: the checkpointed stats file spares the restart
// a collection walk). Backends without the hook ignore it.
func SetStats(idx Index, st *rtree.TreeStats) {
	if st == nil {
		return
	}
	if ss, ok := idx.(interface{ SetStats(*rtree.TreeStats) }); ok {
		ss.SetStats(st)
	}
}
