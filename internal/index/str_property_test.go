package index_test

import (
	"fmt"
	"sort"
	"testing"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/index"
	"mbrtopo/internal/query"
	"mbrtopo/internal/rtree"
	"mbrtopo/internal/topo"
	"mbrtopo/internal/workload"
)

// relationOIDs runs one MBR relation query and returns the sorted
// distinct matching OIDs.
func relationOIDs(t *testing.T, idx index.Index, rel topo.Relation, ref geom.Rect) []uint64 {
	t.Helper()
	p := &query.Processor{Idx: idx}
	res, err := p.QueryMBR(rel, ref)
	if err != nil {
		t.Fatalf("%s query against %s: %v", rel, idx.Name(), err)
	}
	seen := make(map[uint64]bool, len(res.Matches))
	oids := make([]uint64, 0, len(res.Matches))
	for _, m := range res.Matches {
		if !seen[m.OID] {
			seen[m.OID] = true
			oids = append(oids, m.OID)
		}
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	return oids
}

// checkInvariants runs the structural invariant checker of whichever
// tree type backs the index.
func checkInvariants(t *testing.T, label string, idx index.Index) {
	t.Helper()
	var err error
	switch tr := idx.(type) {
	case *rtree.Tree:
		err = tr.CheckInvariants()
	case *rtree.RPlusTree:
		err = tr.CheckInvariants()
	default:
		t.Fatalf("%s: unknown index type %T", label, idx)
	}
	if err != nil {
		t.Fatalf("%s: invariants: %v", label, err)
	}
}

// TestBulkVsIncrementalDifferential is the STR bulk-load property
// test: for every access method, a tree built through InsertBatch
// (Sort-Tile-Recursive packed on the R-/R*-trees) must answer every
// one of the paper's eight relations identically — same sorted OID
// list — to a tree built by one-by-one inserts, on uniform and
// clustered datasets up to 10k rectangles, while both trees keep their
// structural invariants.
func TestBulkVsIncrementalDifferential(t *testing.T) {
	type dataset struct {
		name  string
		d     *workload.Dataset
		nRefs int
	}
	datasets := []dataset{
		{"uniform/100", workload.NewDataset(workload.Medium, 100, 8, 3), 8},
		{"uniform/1000", workload.NewDataset(workload.Medium, 1000, 8, 5), 8},
		{"uniform/10000", workload.NewDataset(workload.Small, 10000, 4, 7), 4},
		{"clustered/2000", workload.ClusteredDataset(workload.Medium, 2000, 8, 6, 9), 8},
		{"clustered/10000", workload.ClusteredDataset(workload.Small, 10000, 4, 10, 13), 4},
	}
	for _, kind := range index.AllKinds() {
		for _, ds := range datasets {
			t.Run(fmt.Sprintf("%s/%s", kind, ds.name), func(t *testing.T) {
				t.Parallel()
				inc, err := index.New(kind)
				if err != nil {
					t.Fatal(err)
				}
				if err := index.Load(inc, ds.d.Items); err != nil {
					t.Fatal(err)
				}
				blk, err := index.New(kind)
				if err != nil {
					t.Fatal(err)
				}
				if err := index.LoadBulk(blk, ds.d.Items); err != nil {
					t.Fatal(err)
				}

				if inc.Len() != blk.Len() {
					t.Fatalf("Len: incremental %d, bulk %d", inc.Len(), blk.Len())
				}
				checkInvariants(t, "incremental", inc)
				checkInvariants(t, "bulk", blk)

				for _, rel := range topo.All() {
					for _, ref := range ds.d.Queries[:ds.nRefs] {
						want := relationOIDs(t, inc, rel, ref)
						got := relationOIDs(t, blk, rel, ref)
						if len(got) != len(want) {
							t.Fatalf("%s %v: bulk answers %d OIDs, incremental %d", rel, ref, len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("%s %v: oid[%d] = %d, want %d", rel, ref, i, got[i], want[i])
							}
						}
					}
				}
			})
		}
	}
}

// TestBulkThenIncrementalMix checks InsertBatch composes with the
// mutation path: STR-pack half the dataset, insert the rest one by
// one, delete a slice, and the answers must match a tree that took
// every mutation incrementally.
func TestBulkThenIncrementalMix(t *testing.T) {
	d := workload.NewDataset(workload.Medium, 2000, 6, 21)
	half := len(d.Items) / 2
	for _, kind := range index.AllKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			inc, err := index.New(kind)
			if err != nil {
				t.Fatal(err)
			}
			if err := index.Load(inc, d.Items); err != nil {
				t.Fatal(err)
			}
			mix, err := index.New(kind)
			if err != nil {
				t.Fatal(err)
			}
			if err := index.LoadBulk(mix, d.Items[:half]); err != nil {
				t.Fatal(err)
			}
			if err := index.LoadBulk(mix, d.Items[half:]); err != nil { // non-empty tree: batched inserts
				t.Fatal(err)
			}
			for _, idx := range []index.Index{inc, mix} {
				for _, it := range d.Items[100:200] {
					if err := idx.Delete(it.Rect, it.OID); err != nil {
						t.Fatalf("%s delete oid %d: %v", idx.Name(), it.OID, err)
					}
				}
			}
			checkInvariants(t, "mixed", mix)
			for _, rel := range topo.All() {
				for _, ref := range d.Queries {
					want := relationOIDs(t, inc, rel, ref)
					got := relationOIDs(t, mix, rel, ref)
					if len(got) != len(want) {
						t.Fatalf("%s %v: mixed answers %d OIDs, incremental %d", rel, ref, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s %v: oid[%d] = %d, want %d", rel, ref, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// BenchmarkBuild compares the two ways to build a tree from a data
// file: one-by-one inserts vs InsertBatch's Sort-Tile-Recursive
// packing (the acceptance target is ≥10× at 100k rectangles).
func BenchmarkBuild(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		d := workload.NewDataset(workload.Small, n, 0, 1995)
		for _, kind := range []index.Kind{index.KindRTree, index.KindRStar} {
			b.Run(fmt.Sprintf("incremental/%s/n=%d", kind, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					idx, err := index.New(kind)
					if err != nil {
						b.Fatal(err)
					}
					if err := index.Load(idx, d.Items); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("bulk/%s/n=%d", kind, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					idx, err := index.New(kind)
					if err != nil {
						b.Fatal(err)
					}
					if err := index.LoadBulk(idx, d.Items); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
