package index

import (
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"mbrtopo/internal/geom"
	"mbrtopo/internal/pagefile"
)

func testItems(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		x := rng.Float64() * 90
		y := rng.Float64() * 90
		items[i] = Item{Rect: geom.R(x, y, x+0.5+rng.Float64()*6, y+0.5+rng.Float64()*6), OID: uint64(i + 1)}
	}
	return items
}

func TestKindBasics(t *testing.T) {
	if KindRTree.String() != "R-tree" || KindRPlus.String() != "R+-tree" || KindRStar.String() != "R*-tree" {
		t.Fatal("kind names broken")
	}
	if Kind(9).String() != "index.Kind(9)" {
		t.Fatal("unknown kind name broken")
	}
	if len(AllKinds()) != 3 {
		t.Fatal("AllKinds broken")
	}
	if _, err := NewWithPageSize(Kind(9), 512); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := NewOnFile(Kind(9), pagefile.NewMemFile(512)); err == nil {
		t.Fatal("unknown kind accepted by NewOnFile")
	}
}

func TestSerialPages(t *testing.T) {
	if SerialPages(10000, 50) != 200 {
		t.Fatalf("paper baseline: %d", SerialPages(10000, 50))
	}
	if SerialPages(10001, 50) != 201 || SerialPages(0, 50) != 0 || SerialPages(10, 0) != 0 {
		t.Fatal("SerialPages edge cases broken")
	}
}

func TestNewAndLoadAllKinds(t *testing.T) {
	items := testItems(200, 1)
	for _, kind := range AllKinds() {
		idx, err := New(kind)
		if err != nil {
			t.Fatal(err)
		}
		if err := Load(idx, items); err != nil {
			t.Fatal(err)
		}
		if idx.Len() != 200 || idx.Name() != kind.String() {
			t.Fatalf("%v: len=%d name=%q", kind, idx.Len(), idx.Name())
		}
		if b, ok := idx.Bounds(); !ok || !b.Valid() {
			t.Fatalf("%v: bounds %v %v", kind, b, ok)
		}
		nn, err := idx.Nearest(geom.Point{X: 45, Y: 45}, 3)
		if err != nil || len(nn) != 3 {
			t.Fatalf("%v: nearest %v %v", kind, nn, err)
		}
	}
}

func TestNewPacked(t *testing.T) {
	items := testItems(500, 2)
	for _, kind := range []Kind{KindRTree, KindRStar} {
		idx, err := NewPacked(kind, 512, items)
		if err != nil {
			t.Fatal(err)
		}
		if idx.Len() != 500 {
			t.Fatalf("%v packed: len=%d", kind, idx.Len())
		}
		// Query parity with an incrementally built index.
		grown, err := NewWithPageSize(kind, 512)
		if err != nil {
			t.Fatal(err)
		}
		if err := Load(grown, items); err != nil {
			t.Fatal(err)
		}
		w := geom.R(20, 20, 50, 50)
		pred := func(r geom.Rect) bool { return r.Intersects(w) }
		collect := func(ix Index) []uint64 {
			var out []uint64
			seen := map[uint64]bool{}
			_ = ix.Search(pred, pred, func(_ geom.Rect, oid uint64) bool {
				if !seen[oid] {
					seen[oid] = true
					out = append(out, oid)
				}
				return true
			})
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		a, b := collect(idx), collect(grown)
		if len(a) != len(b) {
			t.Fatalf("%v: packed window %d vs grown %d", kind, len(a), len(b))
		}
	}
	if _, err := NewPacked(KindRPlus, 512, items); err == nil {
		t.Fatal("R+ packing should be rejected")
	}
}

// TestPersistRoundTrip: Persist + OpenPersistent across a real file,
// for all kinds.
func TestPersistRoundTrip(t *testing.T) {
	items := testItems(300, 3)
	for _, kind := range AllKinds() {
		path := filepath.Join(t.TempDir(), "idx.db")
		file, err := pagefile.CreateDiskFile(path, 512)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := NewOnFile(kind, file)
		if err != nil {
			t.Fatal(err)
		}
		if err := Load(idx, items); err != nil {
			t.Fatal(err)
		}
		if err := Persist(idx, file); err != nil {
			t.Fatal(err)
		}
		if err := file.Close(); err != nil {
			t.Fatal(err)
		}

		re, err := pagefile.OpenDiskFile(path)
		if err != nil {
			t.Fatal(err)
		}
		back, err := OpenPersistent(kind, re)
		if err != nil {
			t.Fatal(err)
		}
		if back.Len() != 300 || back.Height() < 2 {
			t.Fatalf("%v reopened: len=%d height=%d", kind, back.Len(), back.Height())
		}
		// Spot-check a window query against the in-memory truth.
		w := geom.R(30, 30, 60, 60)
		pred := func(r geom.Rect) bool { return r.Intersects(w) }
		got := map[uint64]bool{}
		if err := back.Search(pred, pred, func(_ geom.Rect, oid uint64) bool {
			got[oid] = true
			return true
		}); err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, it := range items {
			if it.Rect.Intersects(w) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("%v reopened window: %d vs %d", kind, len(got), want)
		}
		re.Close()
	}
}
